(* Tests for the vectorized fleet simulator and its serving stack:
   bit-for-bit equivalence of [Fleet] with per-flow [Env] instances and
   of [Fleet_env] with per-flow [Agent_env] episodes, determinism of the
   pool-parallel advancement across domain counts, and the mixed
   Canopy-vs-TCP coexistence harness. *)

module Env = Canopy_netsim.Env
module Fleet = Canopy_netsim.Fleet
module Trace = Canopy_trace.Trace
module Agent_env = Canopy_orca.Agent_env
module Fleet_env = Canopy_orca.Fleet_env
module Fleet_eval = Canopy.Fleet_eval
module Eval = Canopy.Eval
module Mlp = Canopy_nn.Mlp
module Mat = Canopy_tensor.Mat
module Pool = Canopy_util.Pool

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bits a = Array.map Int64.bits_of_float a
let clamp = Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1.

(* Same helper as test_pool: a fresh default pool of [d] domains for the
   duration of [f], previous default restored afterwards. *)
let with_default_pool d f =
  let saved = Pool.default () in
  let pool = Pool.create ~domains:d () in
  Pool.set_default pool;
  Fun.protect
    ~finally:(fun () ->
      Pool.set_default saved;
      Pool.shutdown pool)
    (fun () -> f ())

let impaired =
  {
    Env.random_loss = 0.02;
    ack_jitter_ms = 3;
    reorder_prob = 0.1;
    reorder_ms = 8;
    seed = 11;
  }

let link_cfg ?(impair = Env.no_impairments) ?(min_rtt = 40) ~duration_ms i =
  let mbps = 12. +. (6. *. float_of_int (i mod 5)) in
  {
    Env.trace =
      Trace.constant
        ~name:(Printf.sprintf "t%d" (i mod 5))
        ~duration_ms ~mbps;
    min_rtt_ms = min_rtt;
    buffer_pkts = 120;
    mtu_bytes = Env.default_mtu;
    initial_cwnd = 10.;
    impairments = impair;
  }

(* ------------------------------------------------------------------ *)
(* Fleet vs per-flow Env, bit for bit *)

(* Drive N scalar [Env]s and one N-flow [Fleet] through the same cwnd
   schedule, recording every ack and loss event, and require identical
   event streams and identical (to the bit) counters. One flow carries
   random loss + ACK jitter + reordering so the per-flow PRNG, the
   jittered return-path resort and the reorder hold-back are part of the
   comparison. *)
let test_fleet_matches_env () =
  let n = 5 in
  let duration = 400 in
  let cfgs =
    Array.init n (fun i ->
        link_cfg
          ~impair:(if i = 3 then impaired else Env.no_impairments)
          ~min_rtt:(if i = 1 then 30 else 40)
          ~duration_ms:duration i)
  in
  (* Events per flow, as (now, seq, rtt, delivered) / loss-time lists. *)
  let record () =
    let acks = Array.make n [] and losses = Array.make n [] in
    let handlers =
      Array.init n (fun i ->
          {
            Env.on_ack =
              (fun (a : Env.ack) ->
                acks.(i) <-
                  (a.Env.now_ms, a.Env.seq, a.Env.rtt_ms, a.Env.delivered)
                  :: acks.(i));
            on_loss = (fun ~now_ms -> losses.(i) <- now_ms :: losses.(i));
          })
    in
    (acks, losses, handlers)
  in
  let schedule i seg = 4. +. float_of_int (((i * 7) + (seg * 13)) mod 40) in
  (* Scalar reference. *)
  let envs = Array.map Env.create cfgs in
  let e_acks, e_losses, e_handlers = record () in
  for seg = 0 to 7 do
    Array.iteri (fun i env -> Env.set_cwnd env (schedule i seg)) envs;
    Array.iteri (fun i env -> Env.run env e_handlers.(i) ~ms:50) envs
  done;
  (* Fleet under the same schedule. *)
  let fleet = Fleet.create cfgs in
  let f_acks, f_losses, f_handlers = record () in
  for seg = 0 to 7 do
    for i = 0 to n - 1 do
      Fleet.set_cwnd fleet ~flow:i (schedule i seg)
    done;
    Fleet.run fleet f_handlers ~ms:50
  done;
  check_int "now" (Env.now_ms envs.(0)) (Fleet.now_ms fleet);
  for i = 0 to n - 1 do
    let tag fmt = Printf.sprintf ("flow %d: " ^^ fmt) i in
    check_bool (tag "ack stream") true (e_acks.(i) = f_acks.(i));
    check_bool (tag "loss stream") true (e_losses.(i) = f_losses.(i));
    let s = Env.stats envs.(i) in
    check_int (tag "sent") s.Env.sent (Fleet.sent fleet ~flow:i);
    check_int (tag "delivered") s.Env.delivered (Fleet.delivered fleet ~flow:i);
    check_int (tag "dropped") s.Env.dropped (Fleet.dropped fleet ~flow:i);
    check_bool (tag "capacity bits") true
      (Int64.bits_of_float s.Env.capacity_pkts
      = Int64.bits_of_float (Fleet.capacity_pkts fleet ~flow:i));
    check_bool (tag "cwnd bits") true
      (Int64.bits_of_float (Env.cwnd envs.(i))
      = Int64.bits_of_float (Fleet.cwnd fleet ~flow:i));
    check_int (tag "inflight") (Env.inflight envs.(i))
      (Fleet.inflight fleet ~flow:i);
    check_int (tag "queue") (Env.queue_len envs.(i))
      (Fleet.queue_len fleet ~flow:i);
    check_bool (tag "utilization bits") true
      (Int64.bits_of_float (Env.utilization envs.(i))
      = Int64.bits_of_float (Fleet.utilization fleet ~flow:i));
    check_bool (tag "loss rate bits") true
      (Int64.bits_of_float (Env.loss_rate envs.(i))
      = Int64.bits_of_float (Fleet.loss_rate fleet ~flow:i));
    check_bool (tag "avg qdelay bits") true
      (Int64.bits_of_float (Env.avg_qdelay_ms envs.(i))
      = Int64.bits_of_float (Fleet.avg_qdelay_ms fleet ~flow:i))
  done

(* ------------------------------------------------------------------ *)
(* Fleet_env vs per-flow Agent_env, bit for bit *)

let agent_cfg ?(impair = Env.no_impairments) ~duration_ms i =
  let mbps = 16. +. (8. *. float_of_int (i mod 3)) in
  let trace =
    Trace.constant ~name:(Printf.sprintf "a%d" (i mod 3)) ~duration_ms ~mbps
  in
  {
    (Agent_env.default_config ~trace ~min_rtt_ms:40 ~buffer_pkts:120
       ~duration_ms)
    with
    Agent_env.interval_ms = Some 40;
    impairments = impair;
  }

let test_fleet_env_matches_agent_env () =
  let n = 4 in
  let cfgs =
    Array.init n (fun i ->
        agent_cfg
          ~impair:(if i = 2 then impaired else Env.no_impairments)
          ~duration_ms:600 i)
  in
  let actor =
    Mlp.actor
      ~rng:(Canopy_util.Prng.create 5)
      ~in_dim:(Agent_env.state_dim cfgs.(0))
      ~hidden:16 ~out_dim:1
  in
  let fenv = Fleet_env.create cfgs in
  let envs = Array.map Agent_env.create cfgs in
  let x = Mat.create ~rows:n ~cols:(Fleet_env.state_dim fenv) in
  let y = Mat.create_uninit ~rows:n ~cols:1 in
  let actions = Array.make n 0. in
  let step = ref 0 in
  let fin = ref false in
  while not !fin do
    Fleet_env.write_states fenv ~dst:x;
    for i = 0 to n - 1 do
      check_bool
        (Printf.sprintf "step %d flow %d: state bits" !step i)
        true
        (bits (Mat.row x i) = bits (Agent_env.state envs.(i)))
    done;
    Mlp.forward_eval_into ~dst:y actor x;
    for i = 0 to n - 1 do
      actions.(i) <- clamp (Mat.raw y).(i)
    done;
    let fr = Fleet_env.step fenv ~actions in
    let srs =
      Array.mapi (fun i env -> Agent_env.step env ~action:actions.(i)) envs
    in
    let tag what = Printf.sprintf "step %d: %s bits" !step what in
    check_bool (tag "reward") true
      (bits fr.Fleet_env.rewards
      = bits (Array.map (fun (r : Agent_env.step_result) -> r.raw_reward) srs));
    check_bool (tag "cwnd_tcp") true
      (bits fr.Fleet_env.cwnd_tcp
      = bits (Array.map (fun (r : Agent_env.step_result) -> r.cwnd_tcp) srs));
    check_bool (tag "cwnd_enforced") true
      (bits fr.Fleet_env.cwnd_enforced
      = bits
          (Array.map
             (fun (r : Agent_env.step_result) -> r.cwnd_enforced)
             srs));
    check_bool "finished agrees" true
      (fr.Fleet_env.finished = srs.(n - 1).Agent_env.finished);
    fin := fr.Fleet_env.finished;
    incr step
  done;
  check_int "decision steps" (600 / 40) !step

(* ------------------------------------------------------------------ *)
(* Determinism across domain counts *)

(* 64 flows at a 300 ms interval put every advancement call at
   64 × 300 = 19 200 flow·ms — above the fleet's parallel threshold —
   so the 2- and 4-domain runs really execute on pool chunks. The full
   served episode (actions, rewards, windows) must be bit-identical to
   the 1-domain run; impaired flows keep the per-flow PRNGs in play. *)
let fleet_episode_bits cfgs actor =
  let acc = ref [] in
  let r =
    Fleet_eval.run ~policy:(`Mlp actor)
      ~on_tick:(fun ~tick:_ ~actions ~result ->
        acc := bits result.Fleet_env.cwnd_enforced :: bits actions :: !acc)
      cfgs
  in
  (List.rev !acc, bits (Array.map (fun (f : Fleet_eval.flow_result) -> f.throughput_mbps) r.Fleet_eval.per_flow))

let test_fleet_domains_bit_identical () =
  let cfgs =
    Array.init 64 (fun i ->
        {
          (agent_cfg
             ~impair:
               (if i mod 9 = 0 then
                  {
                    Env.random_loss = 0.005;
                    ack_jitter_ms = 1;
                    reorder_prob = 0.02;
                    reorder_ms = 4;
                    seed = 50 + i;
                  }
                else Env.no_impairments)
             ~duration_ms:900 i)
          with
          Agent_env.interval_ms = Some 300;
        })
  in
  let actor =
    Mlp.actor
      ~rng:(Canopy_util.Prng.create 9)
      ~in_dim:(Agent_env.state_dim cfgs.(0))
      ~hidden:16 ~out_dim:1
  in
  let reference =
    with_default_pool 1 (fun () -> fleet_episode_bits cfgs actor)
  in
  List.iter
    (fun d ->
      let got = with_default_pool d (fun () -> fleet_episode_bits cfgs actor) in
      check_bool
        (Printf.sprintf "%d domains == sequential" d)
        true (got = reference))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Batched serving loop *)

let test_fleet_eval_run () =
  let cfgs = Array.init 8 (fun i -> agent_cfg ~duration_ms:400 i) in
  let actor =
    Mlp.actor
      ~rng:(Canopy_util.Prng.create 2)
      ~in_dim:(Agent_env.state_dim cfgs.(0))
      ~hidden:16 ~out_dim:1
  in
  let r = Fleet_eval.run ~policy:(`Mlp actor) cfgs in
  check_int "flows" 8 r.Fleet_eval.flows;
  check_int "duration" 400 r.Fleet_eval.duration_ms;
  check_int "ticks" (400 / 40) r.Fleet_eval.decision_ticks;
  check_int "per-flow rows" 8 (Array.length r.Fleet_eval.per_flow);
  check_bool "jain in (0,1]" true
    (r.Fleet_eval.jain > 0. && r.Fleet_eval.jain <= 1.0000001);
  Array.iter
    (fun (f : Fleet_eval.flow_result) ->
      check_bool "throughput finite" true (Float.is_finite f.throughput_mbps);
      check_bool "qdelay finite" true (Float.is_finite f.avg_qdelay_ms);
      check_bool "reward finite" true (Float.is_finite f.avg_reward))
    r.Fleet_eval.per_flow

let test_fleet_env_validation () =
  check_bool "empty rejected" true
    (match Fleet_env.create [||] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let a = agent_cfg ~duration_ms:400 0 in
  let b = { a with Agent_env.interval_ms = Some 20 } in
  check_bool "mixed cadence rejected" true
    (match Fleet_env.create [| a; b |] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let env = Fleet_env.create [| a; a |] in
  check_bool "wrong action count rejected" true
    (match Fleet_env.step env ~actions:[| 0. |] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "out-of-range action rejected" true
    (match Fleet_env.step env ~actions:[| 0.; 1.5 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Coexistence *)

let coexist_link duration_ms =
  Eval.link ~min_rtt_ms:40 ~bdp:2. ~duration_ms
    (Trace.constant ~name:"const48" ~duration_ms ~mbps:48.)

let test_coexist_cubic_pair_fair () =
  let r =
    Eval.eval_coexist
      ~flows:
        [
          Eval.Coexist_tcp ("cubic", Eval.cubic_scheme);
          Eval.Coexist_tcp ("cubic", Eval.cubic_scheme);
        ]
      (coexist_link 4_000)
  in
  check_int "two flows" 2 (Array.length r.Eval.flows);
  (* Two identical Cubics on one droptail queue: near-perfect fairness. *)
  check_bool "jain high" true (r.Eval.jain > 0.9);
  check_bool "utilization sane" true
    (r.Eval.utilization > 0.3 && r.Eval.utilization <= 1.0000001)

let test_coexist_canopy_vs_tcp_runs () =
  let actor =
    Mlp.actor
      ~rng:(Canopy_util.Prng.create 1)
      ~in_dim:(5 * Canopy_orca.Observation.feature_count)
      ~hidden:16 ~out_dim:1
  in
  List.iter
    (fun (name, make) ->
      let r =
        Eval.eval_coexist
          ~flows:[ Eval.Coexist_canopy (`Mlp actor); Eval.Coexist_tcp (name, make) ]
          (coexist_link 3_000)
      in
      check_int (name ^ ": two flows") 2 (Array.length r.Eval.flows);
      check_bool (name ^ ": jain in (0,1]") true
        (r.Eval.jain > 0. && r.Eval.jain <= 1.0000001);
      let shares =
        Array.fold_left
          (fun acc (f : Eval.coexist_flow) -> acc +. f.share)
          0. r.Eval.flows
      in
      check_bool (name ^ ": shares sum to 1") true
        (Float.abs (shares -. 1.) < 1e-9);
      Array.iter
        (fun (f : Eval.coexist_flow) ->
          check_bool
            (name ^ ": " ^ f.Eval.scheme ^ " throughput finite")
            true
            (Float.is_finite f.throughput_mbps && f.throughput_mbps >= 0.))
        r.Eval.flows)
    [ ("cubic", Eval.cubic_scheme); ("bbr", Eval.bbr_scheme) ]

(* Degenerate mixes: a lone flow is trivially fair and owns every
   delivered packet; an all-TCP mix (zero Canopy flows) must run the
   exact same harness with no policy serving involved. *)
let test_coexist_degenerate_mixes () =
  let solo =
    Eval.eval_coexist
      ~flows:[ Eval.Coexist_tcp ("cubic", Eval.cubic_scheme) ]
      (coexist_link 3_000)
  in
  check_int "single flow" 1 (Array.length solo.Eval.flows);
  Alcotest.(check (float 1e-9)) "solo jain" 1.0 solo.Eval.jain;
  Alcotest.(check (float 1e-9)) "solo share" 1.0 solo.Eval.flows.(0).Eval.share;
  let trio =
    Eval.eval_coexist
      ~flows:
        [
          Eval.Coexist_tcp ("cubic", Eval.cubic_scheme);
          Eval.Coexist_tcp ("vegas", Eval.vegas_scheme);
          Eval.Coexist_tcp ("bbr", Eval.bbr_scheme);
        ]
      (coexist_link 3_000)
  in
  check_int "all-tcp trio" 3 (Array.length trio.Eval.flows);
  check_bool "trio jain in (0,1]" true
    (trio.Eval.jain > 0. && trio.Eval.jain <= 1.0000001);
  let shares =
    Array.fold_left
      (fun acc (f : Eval.coexist_flow) -> acc +. f.share)
      0. trio.Eval.flows
  in
  check_bool "trio shares sum to 1" true (Float.abs (shares -. 1.) < 1e-9)

(* The mixed harness serves Canopy flows through the pool-parallel GEMM,
   so its results must be bit-identical at any domain count. *)
let test_coexist_domains_bit_identical () =
  let actor =
    Mlp.actor
      ~rng:(Canopy_util.Prng.create 3)
      ~in_dim:(5 * Canopy_orca.Observation.feature_count)
      ~hidden:16 ~out_dim:1
  in
  let run () =
    let r =
      Eval.eval_coexist
        ~flows:[ Eval.Coexist_canopy (`Mlp actor); Eval.Coexist_tcp ("cubic", Eval.cubic_scheme) ]
        (coexist_link 2_000)
    in
    ( bits
        (Array.map (fun (f : Eval.coexist_flow) -> f.throughput_mbps) r.Eval.flows),
      Int64.bits_of_float r.Eval.jain,
      Int64.bits_of_float r.Eval.utilization )
  in
  let want = with_default_pool 1 run in
  List.iter
    (fun d ->
      check_bool
        (Printf.sprintf "domains %d == domains 1" d)
        true
        (with_default_pool d run = want))
    [ 2; 3 ]

(* Staggered arrivals: a flow that joins late delivers less than its
   simultaneous twin, an all-zero arrival vector is the bit-exact
   default, and a wrong-length vector is rejected. *)
let test_coexist_arrivals () =
  let flows =
    [
      Eval.Coexist_tcp ("cubic", Eval.cubic_scheme);
      Eval.Coexist_tcp ("cubic", Eval.cubic_scheme);
    ]
  in
  let base = Eval.eval_coexist ~flows (coexist_link 4_000) in
  let zeroed =
    Eval.eval_coexist ~arrivals:[| 0; 0 |] ~flows (coexist_link 4_000)
  in
  check_bool "zero arrivals == default (bits)" true
    (bits (Array.map (fun (f : Eval.coexist_flow) -> f.throughput_mbps) base.Eval.flows)
     = bits
         (Array.map (fun (f : Eval.coexist_flow) -> f.throughput_mbps) zeroed.Eval.flows)
    && Int64.bits_of_float base.Eval.jain = Int64.bits_of_float zeroed.Eval.jain);
  let late =
    Eval.eval_coexist ~arrivals:[| 0; 2_000 |] ~flows (coexist_link 4_000)
  in
  check_bool "late flow gets smaller share" true
    (late.Eval.flows.(1).Eval.share < late.Eval.flows.(0).Eval.share);
  check_bool "late arrival hurts fairness" true (late.Eval.jain < base.Eval.jain);
  check_bool "wrong-length arrivals rejected" true
    (match Eval.eval_coexist ~arrivals:[| 0 |] ~flows (coexist_link 2_000) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Determinism of the coexistence harness itself: same spec, same
   trajectory, and flow order does not change totals. *)
let test_coexist_deterministic () =
  let run () =
    let r =
      Eval.eval_coexist
        ~flows:
          [
            Eval.Coexist_tcp ("cubic", Eval.cubic_scheme);
            Eval.Coexist_tcp ("vegas", Eval.vegas_scheme);
          ]
        (coexist_link 2_000)
    in
    ( bits
        (Array.map (fun (f : Eval.coexist_flow) -> f.throughput_mbps) r.Eval.flows),
      Int64.bits_of_float r.Eval.jain )
  in
  check_bool "repeat run identical" true (run () = run ())

let suite =
  [
    Alcotest.test_case "fleet == per-flow Env (bits)" `Quick
      test_fleet_matches_env;
    Alcotest.test_case "fleet_env == per-flow Agent_env (bits)" `Quick
      test_fleet_env_matches_agent_env;
    Alcotest.test_case "fleet domains 2,4 == sequential" `Quick
      test_fleet_domains_bit_identical;
    Alcotest.test_case "fleet_eval serve result" `Quick test_fleet_eval_run;
    Alcotest.test_case "fleet_env validation" `Quick test_fleet_env_validation;
    Alcotest.test_case "coexist: cubic pair fair" `Quick
      test_coexist_cubic_pair_fair;
    Alcotest.test_case "coexist: canopy vs cubic/bbr" `Quick
      test_coexist_canopy_vs_tcp_runs;
    Alcotest.test_case "coexist: degenerate mixes" `Quick
      test_coexist_degenerate_mixes;
    Alcotest.test_case "coexist: domains 2,3 == 1 (bits)" `Quick
      test_coexist_domains_bit_identical;
    Alcotest.test_case "coexist: staggered arrivals" `Quick
      test_coexist_arrivals;
    Alcotest.test_case "coexist: deterministic" `Quick
      test_coexist_deterministic;
  ]
