(* Seeded true positive for racecheck: a module-level ref written by a
   helper that is reachable from a Pool-parallel closure. Never
   compiled — test/fixtures has no dune stanza and Sources skips the
   directory; test_racecheck.ml feeds this file to Racecheck.check_files
   and asserts exactly one shared-mutable-in-parallel finding. *)

let total = ref 0

let bump n = total := !total + n

let sum_squares pool xs =
  let n = Array.length xs in
  Pool.parallel_for_chunks pool ~chunk:64 n (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        bump (xs.(i) * xs.(i))
      done);
  !total
