(* True-negative twin of racy_stats.ml: the same accumulation routed
   through a Domain.DLS key, the DESIGN §10-blessed pattern. Racecheck
   must accept this file with zero findings. *)

let total = Domain.DLS.new_key (fun () -> ref 0)

let bump n =
  let cell = Domain.DLS.get total in
  cell := !cell + n

let sum_squares pool xs =
  let n = Array.length xs in
  Pool.parallel_for_chunks pool ~chunk:64 n (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        bump (xs.(i) * xs.(i))
      done)
