(* Tests for the adversarial scenario engine: the parameterized space
   and its deterministic compiler, the random+CEM worst-case search
   (bit-reproducible from its seed at any domain count), and the
   archived-corpus round trip that makes discovered worst cases
   replayable. *)

module Space = Canopy_scenario.Space
module Search = Canopy_scenario.Search
module Corpus = Canopy_scenario.Corpus
module Trace = Canopy_trace.Trace
module Prng = Canopy_util.Prng
module Pool = Canopy_util.Pool

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bits = Array.map Int64.bits_of_float

(* Same helper as test_pool: a fresh default pool of [d] domains for
   the duration of [f], previous default restored afterwards. *)
let with_default_pool d f =
  let saved = Pool.default () in
  let pool = Pool.create ~domains:d () in
  Pool.set_default pool;
  Fun.protect
    ~finally:(fun () ->
      Pool.set_default saved;
      Pool.shutdown pool)
    (fun () -> f ())

let with_tmp_dir f =
  let dir = Filename.temp_file "canopy-scn" "" in
  Sys.remove dir;
  Canopy_util.Atomic_file.mkdir_p dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun e -> Sys.remove (Filename.concat dir e))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let untrained_actor ?(seed = 1) () =
  Canopy_nn.Mlp.actor ~rng:(Prng.create seed)
    ~in_dim:(5 * Canopy_orca.Observation.feature_count)
    ~hidden:8 ~out_dim:1

(* ------------------------------------------------------------------ *)
(* Space *)

let test_space_vector_roundtrip () =
  check_int "n_dims matches dims" (Array.length Space.dims) Space.n_dims;
  let rng = Prng.create 7 in
  for _ = 1 to 20 do
    let v = Space.sample rng in
    check_int "sample length" Space.n_dims (Array.length v);
    Array.iteri
      (fun i x ->
        let d = Space.dims.(i) in
        check_bool (d.Space.dim_name ^ " in box") true
          (x >= d.Space.lo && x <= d.Space.hi))
      v;
    (* in-box vectors survive decode/encode bit for bit *)
    check_bool "of_vector/to_vector roundtrip" true
      (bits (Space.to_vector (Space.of_vector v)) = bits v)
  done;
  check_bool "wrong length rejected" true
    (match Space.of_vector [| 1.; 2. |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_space_clamp () =
  let below = Array.map (fun d -> d.Space.lo -. 10.) Space.dims in
  let above = Array.map (fun d -> d.Space.hi +. 10.) Space.dims in
  check_bool "clamp to lower bounds" true
    (bits (Space.clamp below) = bits (Array.map (fun d -> d.Space.lo) Space.dims));
  check_bool "clamp to upper bounds" true
    (bits (Space.clamp above) = bits (Array.map (fun d -> d.Space.hi) Space.dims));
  (* of_vector clamps too: an out-of-box vector decodes to the same
     params as its clamped image *)
  check_bool "of_vector clamps" true
    (Space.to_vector (Space.of_vector above) = Space.clamp above)

let trace_bits t =
  Array.init (Trace.duration_ms t) (fun ms ->
      Int64.bits_of_float (Trace.mbps_at t ms))

let compiled_bits (c : Space.compiled) =
  ( trace_bits c.Space.trace,
    c.Space.impairments,
    c.Space.c_min_rtt_ms,
    c.Space.arrivals )

let test_compile_deterministic () =
  let p = Space.of_vector (Space.sample (Prng.create 11)) in
  let a = Space.compile ~duration_ms:4_000 ~seed:5 p in
  let b = Space.compile ~duration_ms:4_000 ~seed:5 p in
  check_bool "same (params,seed) -> same scenario" true
    (compiled_bits a = compiled_bits b);
  let c = Space.compile ~duration_ms:4_000 ~seed:6 p in
  check_bool "different seed -> different trace" true
    (compiled_bits a <> compiled_bits c);
  check_int "cross-flow arrivals" Space.n_cross_flows
    (Array.length a.Space.arrivals);
  check_bool "adversarial suite category" true
    (Canopy_trace.Suite.category_of a.Space.trace
    = Canopy_trace.Suite.Adversarial)

(* ------------------------------------------------------------------ *)
(* Search *)

let tiny_config =
  {
    Search.seed = 3;
    duration_ms = 1_200;
    history = 5;
    random_candidates = 4;
    cem_rounds = 1;
    cem_batch = 3;
    elite_frac = 0.5;
  }

let search_bits (r : Search.result) =
  ( r.Search.worst.Search.idx,
    bits r.Search.worst.Search.vector,
    r.Search.worst.Search.scn_seed,
    Int64.bits_of_float r.Search.worst.Search.score,
    r.Search.evaluated,
    List.map Int64.bits_of_float r.Search.round_best )

let test_search_deterministic_across_domains () =
  let actor = untrained_actor () in
  let run () =
    search_bits (Search.search tiny_config ~actor Search.Min_utility)
  in
  let want = with_default_pool 1 run in
  check_int "evaluated = random + rounds*batch" 7
    (let _, _, _, _, n, _ = want in
     n);
  check_bool "repeat run identical" true (with_default_pool 1 run = want);
  check_bool "domains 2 identical" true (with_default_pool 2 run = want)

let test_objective_names () =
  List.iter
    (fun name ->
      check_bool (name ^ " roundtrip") true
        (Search.objective_name (Search.objective_of_name name) = name))
    [ "utility"; "p95"; "violation"; "jain" ];
  check_bool "unknown objective rejected" true
    (match Search.objective_of_name "nope" with
    | _ -> false
    | exception Failure _ -> true)

let test_suite_worst_is_suite_member () =
  let actor = untrained_actor () in
  let name, score =
    Search.suite_worst ~duration_ms:1_200 ~history:5 ~actor Search.Min_utility
  in
  check_bool "worst is a suite member" true
    (List.exists
       (fun t -> Trace.name t = name)
       (Canopy_trace.Suite.all ~duration_ms:1_200 ()));
  check_bool "score finite" true (Float.is_finite score)

(* ------------------------------------------------------------------ *)
(* Corpus *)

let test_corpus_roundtrip () =
  with_tmp_dir (fun dir ->
      let actor = untrained_actor () in
      let r = Search.search tiny_config ~actor Search.Min_utility in
      let record =
        Corpus.of_search ~search_seed:tiny_config.Search.seed
          Search.Min_utility r.Search.worst
      in
      let path = Corpus.save ~dir ~duration_ms:1_200 record in
      check_bool "record file written" true (Sys.file_exists path);
      check_bool "trace file written" true
        (Sys.file_exists (Filename.concat dir (record.Corpus.rec_name ^ ".trace")));
      let back = Corpus.load_file path in
      check_bool "record round-trips bit-exact" true
        (back.Corpus.rec_name = record.Corpus.rec_name
        && back.Corpus.objective = record.Corpus.objective
        && Int64.bits_of_float back.Corpus.score
           = Int64.bits_of_float record.Corpus.score
        && back.Corpus.search_seed = record.Corpus.search_seed
        && back.Corpus.scn_seed = record.Corpus.scn_seed
        && bits back.Corpus.vector = bits record.Corpus.vector);
      (* the reloaded record recompiles to the exact scenario the search
         evaluated, and re-scores to the exact archived score *)
      check_bool "recompile bit-identical" true
        (compiled_bits (Corpus.compiled ~duration_ms:1_200 back)
        = compiled_bits (Corpus.compiled ~duration_ms:1_200 record));
      let rescore =
        Search.score_compiled
          ~refute_rng:(Prng.create back.Corpus.scn_seed)
          ~actor ~history:5 ~duration_ms:1_200 Search.Min_utility
          (Corpus.compiled ~duration_ms:1_200 back)
      in
      check_bool "replayed score bit-equal" true
        (Int64.bits_of_float rescore
        = Int64.bits_of_float record.Corpus.score);
      match Corpus.load_dir dir with
      | [ only ] ->
          check_bool "load_dir finds the record" true
            (only.Corpus.rec_name = record.Corpus.rec_name)
      | other ->
          Alcotest.failf "load_dir: expected 1 record, got %d"
            (List.length other))

let test_corpus_load_dir_missing () =
  check_bool "absent dir -> []" true
    (Corpus.load_dir "/nonexistent/canopy-scenarios" = [])

let test_corpus_rejects_garbage () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "bogus.scn" in
      Canopy_util.Atomic_file.write path "not a scenario\n";
      check_bool "bad magic rejected" true
        (match Corpus.load_file path with
        | _ -> false
        | exception Failure _ -> true))

let test_corpus_env_config () =
  let p = Space.of_vector (Space.sample (Prng.create 13)) in
  let c = Space.compile ~duration_ms:2_000 ~seed:9 p in
  let record =
    {
      Corpus.rec_name = "adv-test-000009";
      objective = "utility";
      score = -1.0;
      search_seed = 1;
      scn_seed = 9;
      vector = Space.to_vector p;
    }
  in
  let cfg = Corpus.env_config ~duration_ms:2_000 record in
  check_int "env min_rtt from scenario" c.Space.c_min_rtt_ms
    cfg.Canopy_orca.Agent_env.min_rtt_ms;
  check_int "env episode length" 2_000 cfg.Canopy_orca.Agent_env.duration_ms;
  check_bool "env impairments from scenario" true
    (cfg.Canopy_orca.Agent_env.impairments = c.Space.impairments);
  check_bool "env trace named after record" true
    (Trace.name cfg.Canopy_orca.Agent_env.trace = "adv-test-000009")

let suite =
  [
    Alcotest.test_case "space: vector roundtrip in box" `Quick
      test_space_vector_roundtrip;
    Alcotest.test_case "space: clamp to bounds" `Quick test_space_clamp;
    Alcotest.test_case "space: compile deterministic" `Quick
      test_compile_deterministic;
    Alcotest.test_case "search: bit-reproducible, domains 1,2" `Quick
      test_search_deterministic_across_domains;
    Alcotest.test_case "search: objective names" `Quick test_objective_names;
    Alcotest.test_case "search: suite_worst member" `Quick
      test_suite_worst_is_suite_member;
    Alcotest.test_case "corpus: save/load/replay bit-exact" `Quick
      test_corpus_roundtrip;
    Alcotest.test_case "corpus: absent dir" `Quick test_corpus_load_dir_missing;
    Alcotest.test_case "corpus: malformed rejected" `Quick
      test_corpus_rejects_garbage;
    Alcotest.test_case "corpus: env_config wiring" `Quick
      test_corpus_env_config;
  ]
