(* Tests for bounded-horizon temporal verification: abstract unrolling of
   the closed loop under an interval environment model. *)

open Canopy
open Canopy_nn
open Canopy_tensor
module Interval = Canopy_absint.Interval
module Observation = Canopy_orca.Observation
module Agent_env = Canopy_orca.Agent_env
module Prng = Canopy_util.Prng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let history = 5
let state_dim = history * Observation.feature_count
let mid_state = Array.make state_dim 0.4

let linear_actor ?(bias = 0.) weight_of =
  Mlp.create ~in_dim:state_dim
    [
      Layer.Dense
        {
          w = Mat.init ~rows:1 ~cols:state_dim (fun _ j -> weight_of j);
          b = [| bias |];
          dw = Mat.create ~rows:1 ~cols:state_dim;
          db = [| 0. |];
        };
      Layer.Tanh;
    ]

let constant_actor a =
  linear_actor ~bias:(0.5 *. log ((1. +. a) /. (1. -. a))) (fun _ -> 0.)

let verify ?env_model ?domain ~actor ~case ~horizon () =
  Temporal.verify ?env_model ?domain ~actor
    ~property:(Property.performance ()) ~case ~horizon ~history
    ~state:mid_state ~cwnd_tcp:100. ()

let test_structure () =
  let t = verify ~actor:(constant_actor 0.) ~case:Property.Large_delay
      ~horizon:4 () in
  check_int "one bound per step" 4 (List.length t.Temporal.steps);
  List.iteri
    (fun i (b : Temporal.step_bound) ->
      check_int "steps numbered" (i + 1) b.Temporal.step;
      check_bool "distance in unit" true
        (b.Temporal.distance >= 0. && b.Temporal.distance <= 1.))
    t.Temporal.steps;
  check_bool "r_verifier in unit" true
    (t.Temporal.r_verifier >= 0. && t.Temporal.r_verifier <= 1.)

let test_shrinking_controller_certified () =
  (* a ≡ −0.999 quarters the window every step: the window never rises
     above its start, at any horizon. *)
  let t =
    verify ~actor:(constant_actor (-0.999)) ~case:Property.Large_delay
      ~horizon:6 ()
  in
  check_bool "certified over horizon" true t.Temporal.certified

let test_growing_controller_violates () =
  let t =
    verify ~actor:(constant_actor 0.999) ~case:Property.Large_delay
      ~horizon:3 ()
  in
  check_bool "not certified" false t.Temporal.certified;
  (* the very first step already violates: distance 0 *)
  (match t.Temporal.steps with
  | first :: _ ->
      check_bool "step 1 fully violating" true (first.Temporal.distance = 0.)
  | [] -> Alcotest.fail "no steps")

let test_growing_controller_small_delay_certified () =
  let t =
    verify ~actor:(constant_actor 0.999) ~case:Property.Small_delay
      ~horizon:4 ()
  in
  check_bool "growth certified for small-delay" true t.Temporal.certified

let test_delay_reactive_controller () =
  (* The "ideal" controller of the per-step tests: strongly negative
     under sustained high delays. Starting from a history that is already
     congested, every unrolled step keeps the window down. (From a mixed
     history the early steps rightly stay uncertified: the controller
     only reacts once the whole delay window is high.) *)
  let delay_idx = Certify.delay_indices ~history in
  let actor =
    linear_actor ~bias:50. (fun j -> if List.mem j delay_idx then -20. else 0.)
  in
  let congested = Array.copy mid_state in
  List.iter (fun i -> congested.(i) <- 0.85) delay_idx;
  let t =
    Temporal.verify ~actor ~property:(Property.performance ())
      ~case:Property.Large_delay ~horizon:3 ~history ~state:congested
      ~cwnd_tcp:100. ()
  in
  check_bool "reactive controller certified" true t.Temporal.certified;
  (* from the mixed mid_state, the first step is undecided or violating *)
  let mixed = verify ~actor ~case:Property.Large_delay ~horizon:3 () in
  check_bool "mixed history not fully certified" false
    mixed.Temporal.certified

let test_wider_env_model_widens_bounds () =
  let rng = Prng.create 14 in
  let actor = Mlp.actor ~rng ~in_dim:state_dim ~hidden:8 ~out_dim:1 in
  let narrow =
    verify
      ~env_model:{ Temporal.cwnd_tcp_drift = 0.01; feature_slack = 0.01 }
      ~actor ~case:Property.Large_delay ~horizon:3 ()
  in
  let wide =
    verify
      ~env_model:{ Temporal.cwnd_tcp_drift = 0.3; feature_slack = 0.2 }
      ~actor ~case:Property.Large_delay ~horizon:3 ()
  in
  List.iter2
    (fun (n : Temporal.step_bound) (w : Temporal.step_bound) ->
      check_bool "narrow model nested in wide" true
        (Interval.subset n.Temporal.cwnd w.Temporal.cwnd))
    narrow.Temporal.steps wide.Temporal.steps

let test_zonotope_not_worse () =
  let rng = Prng.create 15 in
  for _ = 1 to 5 do
    let actor = Mlp.actor ~rng ~in_dim:state_dim ~hidden:8 ~out_dim:1 in
    let box = verify ~actor ~case:Property.Large_delay ~horizon:3 () in
    let zono =
      verify ~domain:Certify.Zonotope_domain ~actor
        ~case:Property.Large_delay ~horizon:3 ()
    in
    List.iter2
      (fun (b : Temporal.step_bound) (z : Temporal.step_bound) ->
        if b.Temporal.certified then
          check_bool "box-certified step stays certified" true
            z.Temporal.certified)
      box.Temporal.steps zono.Temporal.steps
  done

let test_validation () =
  let actor = constant_actor 0. in
  Alcotest.check_raises "horizon" (Invalid_argument "Temporal.verify: horizon")
    (fun () ->
      ignore (verify ~actor ~case:Property.Large_delay ~horizon:0 ()));
  Alcotest.check_raises "noise case"
    (Invalid_argument "Temporal.verify: performance cases only") (fun () ->
      ignore (verify ~actor ~case:Property.Noise ~horizon:2 ()));
  Alcotest.check_raises "robustness property"
    (Invalid_argument "Temporal.verify: performance cases only") (fun () ->
      ignore
        (Temporal.verify ~actor ~property:(Property.robustness ())
           ~case:Property.Noise ~horizon:2 ~history ~state:mid_state
           ~cwnd_tcp:100. ()))

(* Model-relative soundness: replay the unrolling concretely with values
   sampled inside the environment model and check that every concrete
   action and window lies inside the verifier's per-step intervals. *)
let test_soundness_within_model () =
  let rng = Prng.create 4242 in
  let actor = Mlp.actor ~rng ~in_dim:state_dim ~hidden:12 ~out_dim:1 in
  let env_model = { Temporal.cwnd_tcp_drift = 0.1; feature_slack = 0.05 } in
  let property = Property.performance () in
  let case = Property.Large_delay in
  let horizon = 4 in
  let t =
    Temporal.verify ~env_model ~actor ~property ~case ~horizon ~history
      ~state:mid_state ~cwnd_tcp:100. ()
  in
  let delay_region = Property.precondition_delay property case in
  let fc = Observation.feature_count in
  for _ = 1 to 30 do
    (* one concrete rollout inside the model *)
    let frames =
      ref
        (List.init history (fun frame ->
             Array.init fc (fun j -> mid_state.((frame * fc) + j))))
    in
    let anchor = Array.sub mid_state ((history - 1) * fc) fc in
    let cwnd_tcp = ref 100. in
    List.iteri
      (fun i (b : Temporal.step_bound) ->
        let step = i + 1 in
        let slack = env_model.feature_slack *. float_of_int step in
        let fresh =
          Array.init fc (fun j ->
              if j = Observation.delay_index then
                Interval.sample rng delay_region
              else
                Canopy_util.Mathx.clamp ~lo:0. ~hi:1.
                  (Prng.uniform rng (anchor.(j) -. slack) (anchor.(j) +. slack)))
        in
        frames := List.tl !frames @ [ fresh ];
        let state = Array.concat !frames in
        let a =
          Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1.
            (Mlp.forward actor state).(0)
        in
        if not (Interval.contains b.Temporal.action a) then
          Alcotest.failf "step %d: action %f escapes %s" step a
            (Format.asprintf "%a" Interval.pp b.Temporal.action);
        let w = Agent_env.cwnd_of_action ~action:a ~cwnd_tcp:!cwnd_tcp in
        if not (Interval.contains b.Temporal.cwnd w) then
          Alcotest.failf "step %d: window %f escapes %s" step w
            (Format.asprintf "%a" Interval.pp b.Temporal.cwnd);
        (* drift the backbone inside the model *)
        cwnd_tcp :=
          w
          *. Prng.uniform rng
               (1. -. env_model.cwnd_tcp_drift)
               (1. +. env_model.cwnd_tcp_drift))
      t.Temporal.steps
  done

let suite =
  [
    ("structure", `Quick, test_structure);
    ("shrinking controller certified", `Quick,
      test_shrinking_controller_certified);
    ("growing controller violates", `Quick, test_growing_controller_violates);
    ("growth certified for small delay", `Quick,
      test_growing_controller_small_delay_certified);
    ("delay-reactive controller", `Quick, test_delay_reactive_controller);
    ("wider env model widens bounds", `Quick,
      test_wider_env_model_widens_bounds);
    ("zonotope not worse", `Quick, test_zonotope_not_worse);
    ("validation", `Quick, test_validation);
    ("soundness within the model", `Quick, test_soundness_within_model);
  ]
