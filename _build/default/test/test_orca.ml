(* Tests for canopy_orca: Table-1 observations and normalization, the
   monitoring loop (with the measurement-noise model), the power reward
   (Eqs. 2-3), and the Eq.-1 agent environment semantics. *)

open Canopy_orca
module Env = Canopy_netsim.Env
module Trace = Canopy_trace.Trace
module Prng = Canopy_util.Prng

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let obs ?(thr = 10.) ?(loss = 0) ?(qdelay = 5.) ?(n = 20) ?(m = 40)
    ?(srtt = 25.) ?(cwnd = 30.) ?(min_rtt = 20.) () =
  {
    Observation.thr_mbps = thr;
    loss_pkts = loss;
    avg_qdelay_ms = qdelay;
    n_acks = n;
    interval_ms = m;
    srtt_ms = srtt;
    cwnd_pkts = cwnd;
    min_rtt_ms = min_rtt;
  }

(* ------------------------------------------------------------------ *)
(* Observation *)

let test_delay_norm_definition () =
  (* d̂ = qdelay / (qdelay + minRTT) = 1 - invRTT *)
  check_float "zero qdelay" 0.
    (Observation.delay_norm_of_qdelay ~qdelay_ms:0. ~min_rtt_ms:20.);
  check_float "qdelay = minRTT -> 0.5" 0.5
    (Observation.delay_norm_of_qdelay ~qdelay_ms:20. ~min_rtt_ms:20.);
  check_float "qdelay = 3 minRTT -> 0.75" 0.75
    (Observation.delay_norm_of_qdelay ~qdelay_ms:60. ~min_rtt_ms:20.)

let test_delay_norm_roundtrip () =
  List.iter
    (fun d ->
      let q = Observation.qdelay_of_delay_norm ~delay_norm:d ~min_rtt_ms:20. in
      check_bool "roundtrip" true
        (Canopy_util.Mathx.approx_equal ~eps:1e-9
           (Observation.delay_norm_of_qdelay ~qdelay_ms:q ~min_rtt_ms:20.)
           d))
    [ 0.1; 0.25; 0.5; 0.75; 0.9 ]

let test_features_bounded () =
  let f = Observation.to_features ~thr_scale_mbps:50. (obs ()) in
  check_int "feature count" Observation.feature_count (Array.length f);
  Array.iter (fun x -> check_bool "in [0,1]" true (x >= 0. && x <= 1.)) f

let test_delay_feature_position () =
  let f =
    Observation.to_features ~thr_scale_mbps:50. (obs ~qdelay:20. ~min_rtt:20. ())
  in
  check_float "delay at delay_index" 0.5 f.(Observation.delay_index)

let test_feature_monotone_in_delay () =
  let f_lo =
    Observation.to_features ~thr_scale_mbps:50. (obs ~qdelay:1. ())
  in
  let f_hi =
    Observation.to_features ~thr_scale_mbps:50. (obs ~qdelay:100. ())
  in
  check_bool "delay feature grows" true
    (f_hi.(Observation.delay_index) > f_lo.(Observation.delay_index))

let test_loss_feature () =
  let f = Observation.to_features ~thr_scale_mbps:50. (obs ~loss:20 ~n:20 ()) in
  check_float "half lost" 0.5 f.(2);
  let f0 = Observation.to_features ~thr_scale_mbps:50. (obs ~loss:0 ()) in
  check_float "no loss" 0. f0.(2)

let test_thr_scaling () =
  let f = Observation.to_features ~thr_scale_mbps:20. (obs ~thr:10. ()) in
  check_float "thr normalized" 0.5 f.(1);
  let f0 = Observation.to_features ~thr_scale_mbps:0. (obs ()) in
  check_float "zero scale safe" 0. f0.(1)

let test_zero_features () =
  check_int "zero frame size" Observation.feature_count
    (Array.length Observation.zero_features)

(* ------------------------------------------------------------------ *)
(* Monitor *)

let test_monitor_accumulates () =
  let m = Monitor.create ~min_rtt_ms:20 () in
  let h = Monitor.handlers m in
  h.Env.on_ack { Env.now_ms = 10; seq = 0; rtt_ms = 30; delivered = 1 };
  h.Env.on_ack { Env.now_ms = 20; seq = 1; rtt_ms = 40; delivered = 2 };
  h.Env.on_loss ~now_ms:25;
  let o = Monitor.take m ~now_ms:40 ~cwnd_pkts:12. in
  check_int "acks" 2 o.Observation.n_acks;
  check_int "losses" 1 o.Observation.loss_pkts;
  check_int "interval" 40 o.Observation.interval_ms;
  (* avg rtt 35 - minRTT 20 = 15 qdelay *)
  check_float "qdelay" 15. o.Observation.avg_qdelay_ms;
  check_float "cwnd" 12. o.Observation.cwnd_pkts;
  (* throughput: 2 pkts × 1500B × 8 / 40ms *)
  check_float "thr" (2. *. 1500. *. 8. /. 1e6 /. 0.04) o.Observation.thr_mbps

let test_monitor_resets_between_intervals () =
  let m = Monitor.create ~min_rtt_ms:20 () in
  let h = Monitor.handlers m in
  h.Env.on_ack { Env.now_ms = 10; seq = 0; rtt_ms = 30; delivered = 1 };
  ignore (Monitor.take m ~now_ms:20 ~cwnd_pkts:10.);
  let o = Monitor.take m ~now_ms:40 ~cwnd_pkts:10. in
  check_int "fresh interval" 0 o.Observation.n_acks;
  check_int "interval relative" 20 o.Observation.interval_ms

let test_monitor_empty_interval_qdelay_zero () =
  let m = Monitor.create ~min_rtt_ms:20 () in
  let o = Monitor.take m ~now_ms:20 ~cwnd_pkts:10. in
  check_float "no acks -> zero qdelay" 0. o.Observation.avg_qdelay_ms

let test_monitor_srtt_ewma () =
  let m = Monitor.create ~min_rtt_ms:20 () in
  let h = Monitor.handlers m in
  h.Env.on_ack { Env.now_ms = 1; seq = 0; rtt_ms = 40; delivered = 1 };
  check_float "first rtt seeds srtt" 40. (Monitor.srtt_ms m);
  h.Env.on_ack { Env.now_ms = 2; seq = 1; rtt_ms = 80; delivered = 2 };
  check_float "ewma" ((0.875 *. 40.) +. (0.125 *. 80.)) (Monitor.srtt_ms m)

let test_monitor_noise_bounds () =
  let rng = Prng.create 77 in
  let m = Monitor.create ~delay_noise:(rng, 0.05) ~min_rtt_ms:20 () in
  let h = Monitor.handlers m in
  for i = 1 to 50 do
    h.Env.on_ack { Env.now_ms = i; seq = i; rtt_ms = 60; delivered = i };
    let o = Monitor.take m ~now_ms:(i * 20) ~cwnd_pkts:10. in
    let noise = Monitor.last_qdelay_noise m in
    check_bool "noise within ±5%" true (noise >= 0.95 && noise <= 1.05);
    check_bool "qdelay perturbed accordingly" true
      (Canopy_util.Mathx.approx_equal ~eps:1e-9 o.Observation.avg_qdelay_ms
         (40. *. noise))
  done

let test_monitor_no_noise_factor_one () =
  let m = Monitor.create ~min_rtt_ms:20 () in
  ignore (Monitor.take m ~now_ms:20 ~cwnd_pkts:10.);
  check_float "factor 1" 1. (Monitor.last_qdelay_noise m)

let test_monitor_rejects_bad_noise () =
  Alcotest.check_raises "mu >= 1"
    (Invalid_argument "Monitor.create: noise amplitude") (fun () ->
      ignore (Monitor.create ~delay_noise:(Prng.create 1, 1.5) ~min_rtt_ms:20 ()))

(* ------------------------------------------------------------------ *)
(* Reward (Eqs. 2-3) *)

let test_reward_increases_with_throughput () =
  let r = Reward.create () in
  let low = Reward.of_observation r (obs ~thr:10. ~qdelay:0. ()) in
  (* thr_max is now 10; a higher-thr observation raises thr_max to 20 *)
  let high = Reward.of_observation r (obs ~thr:20. ~qdelay:0. ()) in
  check_bool "thr max tracked" true (Reward.thr_max_mbps r = 20.);
  check_bool "reward positive" true (low > 0. && high > 0.)

let test_reward_decreases_with_delay () =
  let r = Reward.create () in
  ignore (Reward.of_observation r (obs ~thr:20. ~qdelay:0. ()));
  let small_delay = Reward.of_observation r (obs ~thr:20. ~qdelay:1. ()) in
  let large_delay = Reward.of_observation r (obs ~thr:20. ~qdelay:100. ()) in
  check_bool "delay punished" true (large_delay < small_delay)

let test_reward_forgiveness_band () =
  (* Within [d_min, beta*d_min] the delay is forgiven: rewards equal. *)
  let r = Reward.create () in
  ignore (Reward.of_observation r (obs ~thr:20. ~qdelay:0. ()));
  let a = Reward.of_observation r (obs ~thr:20. ~qdelay:0. ()) in
  let b = Reward.of_observation r (obs ~thr:20. ~qdelay:4. ()) in
  (* qdelay 4ms, minRTT 20 -> RTT 24 <= 1.25×20 = 25: forgiven *)
  check_float "forgiven" a b

let test_reward_penalizes_loss () =
  let r = Reward.create () in
  ignore (Reward.of_observation r (obs ~thr:20. ()));
  let clean = Reward.of_observation r (obs ~thr:20. ~loss:0 ()) in
  let lossy = Reward.of_observation r (obs ~thr:20. ~loss:50 ()) in
  check_bool "loss punished" true (lossy < clean)

let test_reward_clipped () =
  let r = Reward.create () in
  ignore (Reward.of_observation r (obs ~thr:20. ()));
  let terrible = Reward.of_observation r (obs ~thr:1. ~loss:10_000 ()) in
  check_bool "clipped at -1" true (terrible >= -1.);
  let great = Reward.of_observation r (obs ~thr:20. ~qdelay:0. ()) in
  check_bool "clipped at 1" true (great <= 1.)

let test_reward_zero_before_any_throughput () =
  let r = Reward.create () in
  check_float "cold start" 0. (Reward.of_observation r (obs ~thr:0. ()))

(* ------------------------------------------------------------------ *)
(* Agent environment (Eq. 1) *)

let make_env ?delay_noise ?(mbps = 24.) ?(min_rtt = 40) ?(duration = 4000) () =
  let trace = Trace.constant ~name:"c" ~duration_ms:duration ~mbps in
  let buffer =
    Canopy_cc.Runner.buffer_of_bdp ~bdp_multiplier:2. ~trace ~min_rtt_ms:min_rtt
  in
  let cfg =
    {
      (Agent_env.default_config ~trace ~min_rtt_ms:min_rtt ~buffer_pkts:buffer
         ~duration_ms:duration)
      with
      delay_noise;
    }
  in
  Agent_env.create cfg

let test_env_state_shape () =
  let env = make_env () in
  let s = Agent_env.reset env in
  check_int "state dim" (5 * Observation.feature_count) (Array.length s);
  Array.iter (fun x -> check_float "zero initial history" 0. x) s

let test_env_interval_default () =
  let env = make_env ~min_rtt:40 () in
  check_int "interval = max(20, minRTT)" 40 (Agent_env.interval_ms env);
  let env2 = make_env ~min_rtt:10 () in
  check_int "interval floor 20" 20 (Agent_env.interval_ms env2)

let test_cwnd_of_action_eq1 () =
  (* a=0 -> ×1; a=1 -> ×4; a=-1 -> ×1/4; clamped below at 2. *)
  check_float "identity" 40. (Agent_env.cwnd_of_action ~action:0. ~cwnd_tcp:40.);
  check_float "quadruple" 160. (Agent_env.cwnd_of_action ~action:1. ~cwnd_tcp:40.);
  check_float "quarter" 10. (Agent_env.cwnd_of_action ~action:(-1.) ~cwnd_tcp:40.);
  check_float "floor" 2. (Agent_env.cwnd_of_action ~action:(-1.) ~cwnd_tcp:4.)

let test_env_step_applies_eq1 () =
  let env = make_env () in
  ignore (Agent_env.reset env);
  let suggestion = Agent_env.cwnd_tcp env in
  let res = Agent_env.step env ~action:(-1.) in
  check_float "enforced = suggestion / 4"
    (Agent_env.cwnd_of_action ~action:(-1.) ~cwnd_tcp:suggestion)
    res.Agent_env.cwnd_enforced;
  check_float "reports suggestion" suggestion res.Agent_env.cwnd_tcp

let test_env_step_updates_history () =
  let env = make_env () in
  ignore (Agent_env.reset env);
  let res = Agent_env.step env ~action:0. in
  (* newest frame occupies the last feature_count slots *)
  let n = Array.length res.Agent_env.state in
  let newest =
    Array.sub res.Agent_env.state (n - Observation.feature_count)
      Observation.feature_count
  in
  Alcotest.(check (array (float 1e-12))) "newest frame at the end"
    res.Agent_env.features newest

let test_env_prev_cwnd_tracking () =
  let env = make_env () in
  ignore (Agent_env.reset env);
  check_float "initial prev" 10. (Agent_env.prev_cwnd_enforced env);
  let res = Agent_env.step env ~action:0.3 in
  check_float "prev after step" res.Agent_env.cwnd_enforced
    (Agent_env.prev_cwnd_enforced env)

let test_env_finishes () =
  let env = make_env ~duration:400 () in
  ignore (Agent_env.reset env);
  let steps = ref 0 in
  let finished = ref false in
  while not !finished do
    incr steps;
    finished := (Agent_env.step env ~action:0.).Agent_env.finished
  done;
  check_int "10 intervals of 40ms" 10 !steps;
  Alcotest.check_raises "step after finish"
    (Invalid_argument "Agent_env.step: episode finished") (fun () ->
      ignore (Agent_env.step env ~action:0.))

let test_env_rejects_bad_action () =
  let env = make_env () in
  ignore (Agent_env.reset env);
  Alcotest.check_raises "action range"
    (Invalid_argument "Agent_env.step: action out of range") (fun () ->
      ignore (Agent_env.step env ~action:1.5))

let test_env_reset_reproducible () =
  let env = make_env () in
  let run () =
    ignore (Agent_env.reset env);
    let r1 = Agent_env.step env ~action:0.5 in
    let r2 = Agent_env.step env ~action:(-0.5) in
    (r1.Agent_env.raw_reward, r2.Agent_env.raw_reward,
     r2.Agent_env.cwnd_enforced)
  in
  check_bool "deterministic across resets" true (run () = run ())

let test_env_neutral_policy_utilizes () =
  (* action = 0 leaves Cubic in charge: utilization should end up high. *)
  let env = make_env ~duration:8000 () in
  ignore (Agent_env.reset env);
  let finished = ref false in
  while not !finished do
    finished := (Agent_env.step env ~action:0.).Agent_env.finished
  done;
  check_bool "cubic-driven utilization" true (Agent_env.utilization env > 0.85)

let test_env_throttling_policy_underutilizes () =
  (* action = -1 persistently quarters the window: utilization collapses
     relative to the neutral policy (the Fig. 2 bad-state mechanism). *)
  let env = make_env ~duration:8000 () in
  ignore (Agent_env.reset env);
  let finished = ref false in
  while not !finished do
    finished := (Agent_env.step env ~action:(-1.)).Agent_env.finished
  done;
  check_bool "throttled" true (Agent_env.utilization env < 0.6)

let test_env_noise_changes_observations_not_link () =
  let run noise =
    let env = make_env ?delay_noise:noise ~duration:2000 () in
    ignore (Agent_env.reset env);
    let delays = ref [] in
    let finished = ref false in
    while not !finished do
      let res = Agent_env.step env ~action:0. in
      delays :=
        res.Agent_env.observation.Observation.avg_qdelay_ms :: !delays;
      finished := res.Agent_env.finished
    done;
    (!delays, Agent_env.utilization env)
  in
  let clean, util_clean = run None in
  let noisy, util_noisy = run (Some (Prng.create 5, 0.05)) in
  (* same actions, same link: identical utilization; perturbed readings *)
  check_float "link unaffected" util_clean util_noisy;
  check_bool "observations perturbed" true (clean <> noisy)

let suite =
  [
    ("delay norm definition", `Quick, test_delay_norm_definition);
    ("delay norm roundtrip", `Quick, test_delay_norm_roundtrip);
    ("features bounded", `Quick, test_features_bounded);
    ("delay feature position", `Quick, test_delay_feature_position);
    ("delay feature monotone", `Quick, test_feature_monotone_in_delay);
    ("loss feature", `Quick, test_loss_feature);
    ("throughput scaling", `Quick, test_thr_scaling);
    ("zero features", `Quick, test_zero_features);
    ("monitor accumulates", `Quick, test_monitor_accumulates);
    ("monitor resets", `Quick, test_monitor_resets_between_intervals);
    ("monitor empty interval", `Quick, test_monitor_empty_interval_qdelay_zero);
    ("monitor srtt ewma", `Quick, test_monitor_srtt_ewma);
    ("monitor noise bounds", `Quick, test_monitor_noise_bounds);
    ("monitor noise disabled", `Quick, test_monitor_no_noise_factor_one);
    ("monitor rejects bad noise", `Quick, test_monitor_rejects_bad_noise);
    ("reward tracks throughput", `Quick, test_reward_increases_with_throughput);
    ("reward punishes delay", `Quick, test_reward_decreases_with_delay);
    ("reward forgiveness band", `Quick, test_reward_forgiveness_band);
    ("reward punishes loss", `Quick, test_reward_penalizes_loss);
    ("reward clipped", `Quick, test_reward_clipped);
    ("reward cold start", `Quick, test_reward_zero_before_any_throughput);
    ("env state shape", `Quick, test_env_state_shape);
    ("env interval default", `Quick, test_env_interval_default);
    ("cwnd_of_action (Eq. 1)", `Quick, test_cwnd_of_action_eq1);
    ("env step applies Eq. 1", `Quick, test_env_step_applies_eq1);
    ("env history update", `Quick, test_env_step_updates_history);
    ("env prev_cwnd tracking", `Quick, test_env_prev_cwnd_tracking);
    ("env episode termination", `Quick, test_env_finishes);
    ("env rejects bad action", `Quick, test_env_rejects_bad_action);
    ("env reset reproducible", `Quick, test_env_reset_reproducible);
    ("env neutral policy utilizes", `Quick, test_env_neutral_policy_utilizes);
    ("env throttling underutilizes", `Quick, test_env_throttling_policy_underutilizes);
    ("env noise only perturbs observations", `Quick,
      test_env_noise_changes_observations_not_link);
  ]

(* ------------------------------------------------------------------ *)
(* Property-based invariants *)

let qcheck_orca =
  let open QCheck in
  let gen_obs =
    Gen.(
      let* thr = float_range 0. 500. in
      let* loss = int_range 0 1000 in
      let* qdelay = float_range 0. 2000. in
      let* n = int_range 0 5000 in
      let* m = int_range 1 1000 in
      let* srtt = float_range 1. 2000. in
      let* cwnd = float_range 1. 50_000. in
      let* min_rtt = float_range 2. 400. in
      return (obs ~thr ~loss ~qdelay ~n ~m ~srtt ~cwnd ~min_rtt ()))
  in
  [
    Test.make ~name:"features always in [0,1]" ~count:300 (make gen_obs)
      (fun o ->
        let f = Observation.to_features ~thr_scale_mbps:100. o in
        Array.for_all (fun x -> x >= 0. && x <= 1.) f);
    Test.make ~name:"reward always within clip bounds" ~count:300
      (make Gen.(list_size (1 -- 20) gen_obs))
      (fun observations ->
        let r = Reward.create () in
        List.for_all
          (fun o ->
            let v = Reward.of_observation r o in
            v >= -1. && v <= 1.)
          observations);
    Test.make ~name:"delay norm monotone in qdelay" ~count:300
      (make Gen.(triple (float_range 0. 500.) (float_range 0. 500.)
                   (float_range 2. 400.)))
      (fun (q1, q2, min_rtt) ->
        let d1 = Observation.delay_norm_of_qdelay ~qdelay_ms:q1
            ~min_rtt_ms:min_rtt in
        let d2 = Observation.delay_norm_of_qdelay ~qdelay_ms:q2
            ~min_rtt_ms:min_rtt in
        (q1 <= q2) = (d1 <= d2) || Float.abs (d1 -. d2) < 1e-12);
  ]

let suite = suite @ List.map QCheck_alcotest.to_alcotest qcheck_orca
