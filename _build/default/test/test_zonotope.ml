(* Tests for the zonotope (affine-forms) extension domain and the
   adaptive-subdivision certifier — the Section-8 directions implemented
   on top of the paper's box-domain verifier. The key obligations:
   soundness (never exclude a reachable output) and precision (never
   looser than the box domain on affine structure). *)

open Canopy_absint
open Canopy_nn
module Prng = Canopy_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let box2 =
  Box.of_intervals [| Interval.make (-1.) 1.; Interval.make 0. 2. |]

(* ------------------------------------------------------------------ *)
(* Structure *)

let test_of_box_generators () =
  let z = Zonotope.of_box box2 in
  check_int "dim" 2 (Zonotope.dim z);
  check_int "one symbol per wide dim" 2 (Zonotope.generators z);
  let z0 = Zonotope.of_point [| 1.; 2.; 3. |] in
  check_int "no symbols for a point" 0 (Zonotope.generators z0)

let test_concretize_roundtrip () =
  let z = Zonotope.of_box box2 in
  let back = Zonotope.concretize z in
  check_bool "same box" true (Box.equal ~eps:1e-12 box2 back)

let test_degenerate_dims_skipped () =
  let box =
    Box.of_intervals [| Interval.of_point 5.; Interval.make 0. 1. |]
  in
  let z = Zonotope.of_box box in
  check_int "only the wide dim gets a symbol" 1 (Zonotope.generators z);
  check_float "point dim preserved" 5. (Interval.lo (Zonotope.dimension z 0))

(* ------------------------------------------------------------------ *)
(* Exactness on affine maps — the zonotope's advantage over the box *)

let test_affine_exact_cancellation () =
  (* y = x - x must be exactly 0 in the zonotope domain (the box domain
     widens it to [-2w, 2w]). *)
  let m = Canopy_tensor.Mat.of_arrays [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  (* first map to (x0, x0): *)
  let dup = Canopy_tensor.Mat.of_arrays [| [| 1.; 0. |]; [| 1.; 0. |] |] in
  let diff = Canopy_tensor.Mat.of_arrays [| [| 1.; -1. |] |] in
  ignore m;
  let z = Zonotope.of_box box2 in
  let z = Zonotope.affine dup [| 0.; 0. |] z in
  let z = Zonotope.affine diff [| 0. |] z in
  let out = Zonotope.dimension z 0 in
  check_float "x - x = 0 (lo)" 0. (Interval.lo out);
  check_float "x - x = 0 (hi)" 0. (Interval.hi out);
  (* same computation in the box domain over-approximates: *)
  let b = Box.affine dup [| 0.; 0. |] box2 in
  let b = Box.affine diff [| 0. |] b in
  check_bool "box is strictly wider" true
    (Interval.width (Box.dimension b 0) > 1.)

let test_diag_affine () =
  let z = Zonotope.of_box box2 in
  let z = Zonotope.diag_affine ~scale:[| 2.; -1. |] ~shift:[| 1.; 0. |] z in
  let d0 = Zonotope.dimension z 0 and d1 = Zonotope.dimension z 1 in
  check_float "dim0 lo" (-1.) (Interval.lo d0);
  check_float "dim0 hi" 3. (Interval.hi d0);
  check_float "dim1 lo" (-2.) (Interval.lo d1);
  check_float "dim1 hi" 0. (Interval.hi d1)

(* ------------------------------------------------------------------ *)
(* Soundness of the nonlinear relaxations *)

let random_net rng = Mlp.actor ~rng ~in_dim:6 ~hidden:12 ~out_dim:1

let test_zonotope_soundness_sampling () =
  let rng = Prng.create 808 in
  for _ = 1 to 15 do
    let net = random_net rng in
    let ivs =
      Array.init 6 (fun _ ->
          let c = Prng.uniform rng (-1.) 1. in
          let r = Prng.float rng 0.4 in
          Interval.make (c -. r) (c +. r))
    in
    let box = Box.of_intervals ivs in
    let out = Zonotope.output_interval net box in
    for _ = 1 to 50 do
      let x = Box.sample rng box in
      let y = (Mlp.forward net x).(0) in
      if not (Interval.contains out y) then
        Alcotest.failf "zonotope unsound: %f outside %s" y
          (Format.asprintf "%a" Interval.pp out)
    done
  done

let test_zonotope_never_looser_than_box_on_linear_net () =
  (* Pure affine networks: the zonotope result must be a subset of the
     box result (strictly tighter whenever weights partially cancel). *)
  let rng = Prng.create 4 in
  for _ = 1 to 10 do
    let layers =
      [
        Layer.dense ~rng ~in_dim:4 ~out_dim:6;
        Layer.dense ~rng ~in_dim:6 ~out_dim:1;
      ]
    in
    let net = Mlp.create ~in_dim:4 layers in
    let box =
      Box.of_intervals (Array.init 4 (fun _ -> Interval.make (-0.5) 0.5))
    in
    let zono = Zonotope.output_interval net box in
    let ibp = Ibp.output_interval net box in
    check_bool "zonotope ⊆ box" true (Interval.subset zono ibp)
  done

let test_zonotope_tanh_bounded () =
  let rng = Prng.create 5 in
  let net = random_net rng in
  let box =
    Box.of_intervals (Array.init 6 (fun _ -> Interval.make (-5.) 5.))
  in
  let out = Zonotope.output_interval net box in
  check_bool "inside tanh range" true
    (Interval.lo out >= -1.0000001 && Interval.hi out <= 1.0000001)

let test_point_box_exact_through_net () =
  let rng = Prng.create 6 in
  let net = random_net rng in
  let x = Array.init 6 (fun i -> 0.05 *. float_of_int i) in
  let out = Zonotope.output_interval net (Box.of_point x) in
  let y = (Mlp.forward net x).(0) in
  check_bool "degenerate zonotope = concrete" true
    (Float.abs (Interval.lo out -. y) < 1e-9
    && Float.abs (Interval.hi out -. y) < 1e-9)

let test_leaky_relu_one_sided_exact () =
  let z =
    Zonotope.of_box (Box.of_intervals [| Interval.make 1. 2. |])
  in
  let out = Zonotope.dimension (Zonotope.leaky_relu ~slope:0.1 z) 0 in
  check_float "positive side identity lo" 1. (Interval.lo out);
  check_float "positive side identity hi" 2. (Interval.hi out);
  let z =
    Zonotope.of_box (Box.of_intervals [| Interval.make (-2.) (-1.) |])
  in
  let out = Zonotope.dimension (Zonotope.leaky_relu ~slope:0.1 z) 0 in
  check_float "negative side scaled lo" (-0.2) (Interval.lo out);
  check_float "negative side scaled hi" (-0.1) (Interval.hi out)

let test_relu_straddling_sound () =
  let z = Zonotope.of_box (Box.of_intervals [| Interval.make (-1.) 3. |]) in
  let out = Zonotope.dimension (Zonotope.relu z) 0 in
  (* must contain the true range [0, 3] *)
  check_bool "contains relu range" true
    (Interval.lo out <= 0. && Interval.hi out >= 3.)

(* ------------------------------------------------------------------ *)
(* Certify with the zonotope domain *)

module Observation = Canopy_orca.Observation

let history = 5
let state_dim = history * Observation.feature_count
let mid_state = Array.make state_dim 0.4

let test_certify_zonotope_sound_vs_concrete () =
  let rng = Prng.create 909 in
  let actor = Mlp.actor ~rng ~in_dim:state_dim ~hidden:12 ~out_dim:1 in
  let property = Canopy.Property.performance () in
  let cert =
    Canopy.Certify.certify ~domain:Canopy.Certify.Zonotope_domain ~actor
      ~property ~n_components:4 ~history ~state:mid_state ~cwnd_tcp:100.
      ~prev_cwnd:90. ()
  in
  let delay_idx = Canopy.Certify.delay_indices ~history in
  Array.iter
    (fun comp ->
      let case_iv =
        Canopy.Property.precondition_delay property comp.Canopy.Certify.case
      in
      let slice =
        List.nth (Interval.split case_iv 4) comp.Canopy.Certify.index
      in
      for _ = 1 to 20 do
        let d = Interval.sample rng slice in
        let s = Array.copy mid_state in
        List.iter (fun i -> s.(i) <- d) delay_idx;
        let a =
          Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1. (Mlp.forward actor s).(0)
        in
        check_bool "action inside zonotope bound" true
          (Interval.contains comp.Canopy.Certify.action a)
      done)
    cert.Canopy.Certify.components

let test_certify_zonotope_at_least_as_tight () =
  (* Certification is monotone under output tightening (a subset of a
     certified interval stays inside Y), and the zonotope runs as a
     reduced product with the box — so every box-certified component must
     also be zonotope-certified. (The scalar distance D of Eq. 7 is NOT
     monotone under tightening, so FCC is the right comparison.) *)
  let rng = Prng.create 1001 in
  for _ = 1 to 10 do
    let actor = Mlp.actor ~rng ~in_dim:state_dim ~hidden:8 ~out_dim:1 in
    let run domain =
      Canopy.Certify.certify ~domain ~actor
        ~property:(Canopy.Property.performance ()) ~n_components:5 ~history
        ~state:mid_state ~cwnd_tcp:100. ~prev_cwnd:90. ()
    in
    let box = run Canopy.Certify.Box_domain in
    let zono = run Canopy.Certify.Zonotope_domain in
    Array.iteri
      (fun i comp ->
        if comp.Canopy.Certify.certified then
          check_bool "box-certified implies zonotope-certified" true
            zono.Canopy.Certify.components.(i).Canopy.Certify.certified)
      box.Canopy.Certify.components;
    check_bool "fcc not worse" true
      (zono.Canopy.Certify.fcc >= box.Canopy.Certify.fcc -. 1e-9)
  done

(* ------------------------------------------------------------------ *)
(* Adaptive subdivision *)

let test_adaptive_matches_plain_on_decided () =
  (* A constant controller decides every component immediately, so the
     adaptive certifier must not split anything. *)
  let bias = 0.5 *. log ((1. +. 0.9) /. (1. -. 0.9)) in
  let actor =
    Mlp.create ~in_dim:state_dim
      [
        Layer.Dense
          {
            w = Canopy_tensor.Mat.create ~rows:1 ~cols:state_dim;
            b = [| bias |];
            dw = Canopy_tensor.Mat.create ~rows:1 ~cols:state_dim;
            db = [| 0. |];
          };
        Layer.Tanh;
      ]
  in
  let cert =
    Canopy.Certify.certify_adaptive ~actor
      ~property:(Canopy.Property.performance ()) ~initial_components:2
      ~max_components:16 ~history ~state:mid_state ~cwnd_tcp:100.
      ~prev_cwnd:100. ()
  in
  check_int "no refinement needed" 4
    (Array.length cert.Canopy.Certify.components)

(* Total precondition width that is provably certified: monotone under
   refinement, because sub-slices of a certified slice stay certified. *)
let certified_measure (cert : Canopy.Certify.t) case =
  Array.to_list cert.Canopy.Certify.components
  |> List.filter (fun c -> c.Canopy.Certify.case = case)
  |> List.filter (fun c -> c.Canopy.Certify.certified)
  |> List.map (fun c -> Interval.width c.Canopy.Certify.slice)
  |> List.fold_left ( +. ) 0.

let test_adaptive_improves_or_matches_fcc () =
  let rng = Prng.create 77 in
  for _ = 1 to 8 do
    let actor = Mlp.actor ~rng ~in_dim:state_dim ~hidden:8 ~out_dim:1 in
    let plain =
      Canopy.Certify.certify ~actor
        ~property:(Canopy.Property.performance ()) ~n_components:2 ~history
        ~state:mid_state ~cwnd_tcp:100. ~prev_cwnd:90. ()
    in
    let adaptive =
      Canopy.Certify.certify_adaptive ~actor
        ~property:(Canopy.Property.performance ()) ~initial_components:2
        ~max_components:16 ~history ~state:mid_state ~cwnd_tcp:100.
        ~prev_cwnd:90. ()
    in
    (* refinement can only grow the provably-certified measure *)
    List.iter
      (fun case ->
        check_bool "adaptive certified measure >= plain" true
          (certified_measure adaptive case
          >= certified_measure plain case -. 1e-9))
      [ Canopy.Property.Large_delay; Canopy.Property.Small_delay ]
  done

let test_adaptive_budget_respected () =
  let rng = Prng.create 88 in
  let actor = Mlp.actor ~rng ~in_dim:state_dim ~hidden:8 ~out_dim:1 in
  let cert =
    Canopy.Certify.certify_adaptive ~actor
      ~property:(Canopy.Property.performance ()) ~initial_components:2
      ~max_components:10 ~history ~state:mid_state ~cwnd_tcp:100.
      ~prev_cwnd:90. ()
  in
  (* each case starts with 2 slices and may add at most 10 splits, each
     split increasing the count by 1: <= 12 per case, 24 total *)
  check_bool "budget respected" true
    (Array.length cert.Canopy.Certify.components <= 24)

let test_adaptive_validation () =
  let actor =
    Mlp.actor ~rng:(Prng.create 1) ~in_dim:state_dim ~hidden:4 ~out_dim:1
  in
  Alcotest.check_raises "max < initial"
    (Invalid_argument "Certify.certify_adaptive: max_components") (fun () ->
      ignore
        (Canopy.Certify.certify_adaptive ~actor
           ~property:(Canopy.Property.performance ()) ~initial_components:8
           ~max_components:4 ~history ~state:mid_state ~cwnd_tcp:100.
           ~prev_cwnd:90. ()))

let suite =
  [
    ("of_box generators", `Quick, test_of_box_generators);
    ("concretize roundtrip", `Quick, test_concretize_roundtrip);
    ("degenerate dims skipped", `Quick, test_degenerate_dims_skipped);
    ("affine cancellation exact", `Quick, test_affine_exact_cancellation);
    ("diag affine", `Quick, test_diag_affine);
    ("soundness by sampling", `Quick, test_zonotope_soundness_sampling);
    ("tighter than box on affine nets", `Quick,
      test_zonotope_never_looser_than_box_on_linear_net);
    ("tanh range preserved", `Quick, test_zonotope_tanh_bounded);
    ("point box exact", `Quick, test_point_box_exact_through_net);
    ("leaky relu one-sided exact", `Quick, test_leaky_relu_one_sided_exact);
    ("relu straddling sound", `Quick, test_relu_straddling_sound);
    ("certify (zonotope) sound", `Quick, test_certify_zonotope_sound_vs_concrete);
    ("certify (zonotope) at least as tight", `Quick,
      test_certify_zonotope_at_least_as_tight);
    ("adaptive: no refinement when decided", `Quick,
      test_adaptive_matches_plain_on_decided);
    ("adaptive improves r_verifier", `Quick, test_adaptive_improves_or_matches_fcc);
    ("adaptive budget respected", `Quick, test_adaptive_budget_respected);
    ("adaptive validation", `Quick, test_adaptive_validation);
  ]
