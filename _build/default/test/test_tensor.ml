(* Tests for canopy_tensor: vector and matrix algebra. *)

open Canopy_tensor

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)
let vec = Alcotest.testable Vec.pp (Vec.approx_equal ~eps:1e-9)
let mat = Alcotest.testable Mat.pp (Mat.approx_equal ~eps:1e-9)

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_create_init () =
  Alcotest.check vec "zeros" [| 0.; 0.; 0. |] (Vec.create 3);
  Alcotest.check vec "init" [| 0.; 1.; 4. |]
    (Vec.init 3 (fun i -> float_of_int (i * i)))

let test_vec_arith () =
  let a = [| 1.; 2.; 3. |] and b = [| 4.; 5.; 6. |] in
  Alcotest.check vec "add" [| 5.; 7.; 9. |] (Vec.add a b);
  Alcotest.check vec "sub" [| -3.; -3.; -3. |] (Vec.sub a b);
  Alcotest.check vec "mul" [| 4.; 10.; 18. |] (Vec.mul a b);
  Alcotest.check vec "scale" [| 2.; 4.; 6. |] (Vec.scale 2. a)

let test_vec_axpy () =
  let y = [| 1.; 1. |] in
  Vec.axpy ~alpha:3. ~x:[| 2.; -1. |] ~y;
  Alcotest.check vec "axpy" [| 7.; -2. |] y

let test_vec_into () =
  let dst = Vec.create 2 in
  Vec.add_into ~dst [| 1.; 2. |] [| 3.; 4. |];
  Alcotest.check vec "add_into" [| 4.; 6. |] dst;
  Vec.sub_into ~dst [| 1.; 2. |] [| 3.; 4. |];
  Alcotest.check vec "sub_into" [| -2.; -2. |] dst;
  Vec.map_into ~dst (fun x -> x *. x) [| 3.; 4. |];
  Alcotest.check vec "map_into" [| 9.; 16. |] dst

let test_vec_dot_norm () =
  check_float "dot" 32. (Vec.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |]);
  check_float "norm2" 5. (Vec.norm2 [| 3.; 4. |]);
  check_float "norm_inf" 4. (Vec.norm_inf [| 3.; -4. |]);
  check_float "sum" 6. (Vec.sum [| 1.; 2.; 3. |]);
  check_float "mean" 2. (Vec.mean [| 1.; 2.; 3. |]);
  check_float "mean empty" 0. (Vec.mean [||])

let test_vec_minmax () =
  let a = [| 3.; -1.; 7.; 2. |] in
  check_float "max" 7. (Vec.max_elt a);
  check_float "min" (-1.) (Vec.min_elt a);
  Alcotest.(check int) "argmax" 2 (Vec.argmax a)

let test_vec_concat_slice () =
  let c = Vec.concat [ [| 1. |]; [| 2.; 3. |]; [||] ] in
  Alcotest.check vec "concat" [| 1.; 2.; 3. |] c;
  Alcotest.check vec "slice" [| 2.; 3. |] (Vec.slice c ~pos:1 ~len:2)

let test_vec_dim_mismatch () =
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Vec.add: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vec.add [| 1.; 2. |] [| 1.; 2.; 3. |]))

(* ------------------------------------------------------------------ *)
(* Mat *)

let m23 = Mat.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |]

let test_mat_shape_access () =
  Alcotest.(check int) "rows" 2 (Mat.rows m23);
  Alcotest.(check int) "cols" 3 (Mat.cols m23);
  check_float "get" 6. (Mat.get m23 1 2);
  Alcotest.check vec "row" [| 4.; 5.; 6. |] (Mat.row m23 1)

let test_mat_set_copy () =
  let m = Mat.copy m23 in
  Mat.set m 0 0 42.;
  check_float "set" 42. (Mat.get m 0 0);
  check_float "original untouched" 1. (Mat.get m23 0 0)

let test_mat_transpose () =
  let t = Mat.transpose m23 in
  Alcotest.(check int) "t rows" 3 (Mat.rows t);
  check_float "t(2,1)" 6. (Mat.get t 2 1);
  Alcotest.check mat "double transpose" m23 (Mat.transpose t)

let test_mat_arith () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_arrays [| [| 10.; 20. |]; [| 30.; 40. |] |] in
  Alcotest.check mat "add"
    (Mat.of_arrays [| [| 11.; 22. |]; [| 33.; 44. |] |])
    (Mat.add a b);
  Alcotest.check mat "sub"
    (Mat.of_arrays [| [| 9.; 18. |]; [| 27.; 36. |] |])
    (Mat.sub b a);
  Alcotest.check mat "scale"
    (Mat.of_arrays [| [| 2.; 4. |]; [| 6.; 8. |] |])
    (Mat.scale 2. a);
  Alcotest.check mat "abs"
    (Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |])
    (Mat.abs (Mat.scale (-1.) a))

let test_mat_vec () =
  Alcotest.check vec "mat_vec" [| 14.; 32. |] (Mat.mat_vec m23 [| 1.; 2.; 3. |]);
  let dst = Vec.create 2 in
  Mat.mat_vec_into ~dst m23 [| 1.; 2.; 3. |];
  Alcotest.check vec "mat_vec_into" [| 14.; 32. |] dst

let test_mat_tvec () =
  Alcotest.check vec "mat_tvec" [| 9.; 12.; 15. |]
    (Mat.mat_tvec m23 [| 1.; 2. |])

let test_mat_mul () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  Alcotest.check mat "matmul"
    (Mat.of_arrays [| [| 19.; 22. |]; [| 43.; 50. |] |])
    (Mat.mat_mul a b)

let test_mat_identity_mul () =
  let id = Mat.init ~rows:3 ~cols:3 (fun i j -> if i = j then 1. else 0.) in
  Alcotest.check mat "I * Mᵀ" (Mat.transpose m23)
    (Mat.mat_mul id (Mat.transpose m23))

let test_mat_outer_acc () =
  let m = Mat.create ~rows:2 ~cols:3 in
  Mat.outer_acc m [| 1.; 2. |] [| 3.; 4.; 5. |];
  Mat.outer_acc m [| 1.; 0. |] [| 1.; 1.; 1. |];
  Alcotest.check mat "outer accumulated"
    (Mat.of_arrays [| [| 4.; 5.; 6. |]; [| 6.; 8.; 10. |] |])
    m

let test_mat_axpy_frobenius () =
  let x = Mat.of_arrays [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  let y = Mat.create ~rows:2 ~cols:2 in
  Mat.axpy ~alpha:3. ~x ~y;
  check_float "frobenius" (3. *. sqrt 2.) (Mat.frobenius y)

let test_mat_raw_shares () =
  let m = Mat.create ~rows:2 ~cols:2 in
  (Mat.raw m).(3) <- 9.;
  check_float "raw shares storage" 9. (Mat.get m 1 1)

let test_mat_errors () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_arrays: ragged")
    (fun () -> ignore (Mat.of_arrays [| [| 1. |]; [| 1.; 2. |] |]));
  Alcotest.check_raises "mat_vec dims" (Invalid_argument "Mat.mat_vec: dims")
    (fun () -> ignore (Mat.mat_vec m23 [| 1. |]))

(* ------------------------------------------------------------------ *)
(* Property-based: algebraic identities *)

let gen_mat rows cols =
  QCheck.Gen.(
    array_size (return (rows * cols)) (float_range (-10.) 10.)
    |> map (fun data ->
           Mat.init ~rows ~cols (fun i j -> data.((i * cols) + j))))

let gen_vecn n = QCheck.Gen.(array_size (return n) (float_range (-10.) 10.))

let qcheck =
  let open QCheck in
  [
    Test.make ~name:"adjoint identity (Ax)·y = x·(Aᵀy)" ~count:100
      (make
         Gen.(
           let* m = gen_mat 3 4 in
           let* x = gen_vecn 4 in
           let* y = gen_vecn 3 in
           return (m, x, y)))
      (fun (m, x, y) ->
        Canopy_util.Mathx.approx_equal ~eps:1e-6
          (Vec.dot (Mat.mat_vec m x) y)
          (Vec.dot x (Mat.mat_tvec m y)));
    Test.make ~name:"matmul consistent with mat_vec" ~count:100
      (make
         Gen.(
           let* a = gen_mat 3 2 in
           let* b = gen_mat 2 4 in
           let* x = gen_vecn 4 in
           return (a, b, x)))
      (fun (a, b, x) ->
        Vec.approx_equal ~eps:1e-6
          (Mat.mat_vec (Mat.mat_mul a b) x)
          (Mat.mat_vec a (Mat.mat_vec b x)));
    Test.make ~name:"|M| dominates M elementwise" ~count:100
      (make (gen_mat 4 4))
      (fun m ->
        let a = Mat.abs m in
        let ok = ref true in
        for i = 0 to 3 do
          for j = 0 to 3 do
            if Mat.get a i j < Float.abs (Mat.get m i j) -. 1e-12 then
              ok := false
          done
        done;
        !ok);
    Test.make ~name:"vec add commutes" ~count:100
      (make Gen.(pair (gen_vecn 5) (gen_vecn 5)))
      (fun (a, b) -> Vec.approx_equal (Vec.add a b) (Vec.add b a));
  ]

let suite =
  [
    ("vec create/init", `Quick, test_vec_create_init);
    ("vec arithmetic", `Quick, test_vec_arith);
    ("vec axpy", `Quick, test_vec_axpy);
    ("vec _into variants", `Quick, test_vec_into);
    ("vec dot/norms", `Quick, test_vec_dot_norm);
    ("vec min/max/argmax", `Quick, test_vec_minmax);
    ("vec concat/slice", `Quick, test_vec_concat_slice);
    ("vec dimension mismatch", `Quick, test_vec_dim_mismatch);
    ("mat shape/access", `Quick, test_mat_shape_access);
    ("mat set/copy", `Quick, test_mat_set_copy);
    ("mat transpose", `Quick, test_mat_transpose);
    ("mat arithmetic", `Quick, test_mat_arith);
    ("mat mat_vec", `Quick, test_mat_vec);
    ("mat mat_tvec", `Quick, test_mat_tvec);
    ("mat mat_mul", `Quick, test_mat_mul);
    ("mat identity mul", `Quick, test_mat_identity_mul);
    ("mat outer_acc", `Quick, test_mat_outer_acc);
    ("mat axpy/frobenius", `Quick, test_mat_axpy_frobenius);
    ("mat raw shares storage", `Quick, test_mat_raw_shares);
    ("mat errors", `Quick, test_mat_errors);
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck
