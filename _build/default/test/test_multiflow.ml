(* Tests for the shared-bottleneck multi-flow simulator: conservation,
   fairness of identical AIMD flows, the classic Cubic-vs-Vegas
   unfairness, and per-flow feedback plumbing. *)

module MF = Canopy_netsim.Multiflow
module Env = Canopy_netsim.Env
module Trace = Canopy_trace.Trace
open Canopy_cc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let config ?(flows = 2) ?(mbps = 48.) ?(duration = 10_000) ?(min_rtt = 40)
    ?(buffer = 320) () =
  {
    MF.trace = Trace.constant ~name:"c" ~duration_ms:duration ~mbps;
    min_rtt_ms = Array.make flows min_rtt;
    buffer_pkts = buffer;
    mtu_bytes = 1500;
    initial_cwnd = 10.;
  }

let null_handlers n = Array.make n Env.null_handlers

let drive_controllers mf controllers ~ms =
  let handlers =
    Array.map (fun c -> Controller.handlers c) controllers
  in
  for _ = 1 to ms do
    MF.tick mf handlers;
    Array.iteri
      (fun i c -> MF.set_cwnd mf ~flow:i (c.Controller.cwnd ()))
      controllers
  done

let test_validation () =
  Alcotest.check_raises "no flows" (Invalid_argument "Multiflow.create: no flows")
    (fun () ->
      ignore
        (MF.create
           {
             MF.trace = Trace.constant ~name:"c" ~duration_ms:10 ~mbps:1.;
             min_rtt_ms = [||];
             buffer_pkts = 1;
             mtu_bytes = 1500;
             initial_cwnd = 2.;
           }));
  let mf = MF.create (config ()) in
  Alcotest.check_raises "handlers arity"
    (Invalid_argument "Multiflow.tick: handlers") (fun () ->
      MF.tick mf (null_handlers 1))

let test_basic_accounting () =
  let mf = MF.create (config ()) in
  MF.run mf (null_handlers 2) ~ms:2000;
  check_int "two flows" 2 (MF.flows mf);
  check_int "clock" 2000 (MF.now_ms mf);
  check_bool "flow 0 delivered" true (MF.delivered mf ~flow:0 > 0);
  check_bool "flow 1 delivered" true (MF.delivered mf ~flow:1 > 0);
  check_bool "delivered <= sent" true
    (MF.delivered mf ~flow:0 <= MF.sent mf ~flow:0)

let test_identical_flows_fair () =
  (* Two identical fixed windows share the link exactly evenly. *)
  let mf = MF.create (config ~mbps:24. ()) in
  MF.set_cwnd mf ~flow:0 40.;
  MF.set_cwnd mf ~flow:1 40.;
  MF.run mf (null_handlers 2) ~ms:10_000;
  check_bool "jain near 1" true (MF.jain_index mf > 0.99)

let test_cubic_pair_fair_and_full () =
  let mf = MF.create (config ~mbps:48. ()) in
  let cubs = Array.init 2 (fun _ -> Cubic.create ()) in
  drive_controllers mf (Array.map Cubic.to_controller cubs) ~ms:20_000;
  check_bool "fair" true (MF.jain_index mf > 0.95);
  check_bool "full link" true (MF.utilization mf > 0.9)

let test_cubic_starves_vegas () =
  (* The classic result: a loss-based flow fills the buffer and the
     delay-based flow backs off. *)
  let mf = MF.create (config ~mbps:48. ()) in
  let cub = Cubic.create () and veg = Vegas.create () in
  drive_controllers mf
    [| Cubic.to_controller cub; Vegas.to_controller veg |]
    ~ms:20_000;
  check_bool "cubic dominates" true
    (MF.throughput_mbps mf ~flow:0 > 5. *. MF.throughput_mbps mf ~flow:1);
  check_bool "jain below fair" true (MF.jain_index mf < 0.8)

let test_heterogeneous_rtt_bias () =
  (* AIMD favours the short-RTT flow; the long-RTT flow should get a
     smaller (but non-zero) share. *)
  let cfg = { (config ~mbps:48. ()) with MF.min_rtt_ms = [| 20; 120 |] } in
  let mf = MF.create cfg in
  let cubs = Array.init 2 (fun _ -> Cubic.create ()) in
  drive_controllers mf (Array.map Cubic.to_controller cubs) ~ms:20_000;
  check_bool "short RTT ahead" true
    (MF.throughput_mbps mf ~flow:0 > MF.throughput_mbps mf ~flow:1);
  check_bool "long RTT alive" true (MF.delivered mf ~flow:1 > 0)

let test_per_flow_feedback_isolated () =
  let mf = MF.create (config ~mbps:12. ~buffer:10 ()) in
  let acks = [| 0; 0 |] in
  let handlers =
    Array.init 2 (fun i ->
        {
          Env.on_ack = (fun _ -> acks.(i) <- acks.(i) + 1);
          on_loss = (fun ~now_ms:_ -> ());
        })
  in
  MF.set_cwnd mf ~flow:0 20.;
  MF.set_cwnd mf ~flow:1 1.;
  MF.run mf handlers ~ms:3000;
  check_int "handler count matches deliveries (flow 0)"
    (MF.delivered mf ~flow:0) acks.(0);
  check_int "handler count matches deliveries (flow 1)"
    (MF.delivered mf ~flow:1) acks.(1);
  check_bool "window asymmetry visible" true (acks.(0) > 3 * acks.(1))

let test_rtt_reflects_per_flow_propagation () =
  let cfg = { (config ()) with MF.min_rtt_ms = [| 20; 80 |] } in
  let mf = MF.create cfg in
  let min_rtts = [| max_int; max_int |] in
  let handlers =
    Array.init 2 (fun i ->
        {
          Env.on_ack =
            (fun ack -> min_rtts.(i) <- min min_rtts.(i) ack.Env.rtt_ms);
          on_loss = (fun ~now_ms:_ -> ());
        })
  in
  MF.run mf handlers ~ms:2000;
  check_int "flow 0 floor" 20 min_rtts.(0);
  check_int "flow 1 floor" 80 min_rtts.(1)

let test_shared_buffer_conserved () =
  (* Aggregate delivered packets never exceed offered capacity. *)
  let mf = MF.create (config ~mbps:12. ~buffer:30 ()) in
  MF.set_cwnd mf ~flow:0 200.;
  MF.set_cwnd mf ~flow:1 200.;
  MF.run mf (null_handlers 2) ~ms:5000;
  check_bool "utilization <= 1" true (MF.utilization mf <= 1.);
  check_bool "drops happened" true
    (MF.dropped mf ~flow:0 + MF.dropped mf ~flow:1 > 0)

let test_single_flow_degenerates () =
  let mf = MF.create (config ~flows:1 ()) in
  MF.run mf (null_handlers 1) ~ms:2000;
  check_float "jain trivial" 1. (MF.jain_index mf);
  check_bool "delivers" true (MF.delivered mf ~flow:0 > 0)

let suite =
  [
    ("validation", `Quick, test_validation);
    ("basic accounting", `Quick, test_basic_accounting);
    ("identical windows fair", `Quick, test_identical_flows_fair);
    ("cubic pair fair and full", `Quick, test_cubic_pair_fair_and_full);
    ("cubic starves vegas", `Quick, test_cubic_starves_vegas);
    ("heterogeneous rtt bias", `Quick, test_heterogeneous_rtt_bias);
    ("per-flow feedback isolated", `Quick, test_per_flow_feedback_isolated);
    ("per-flow propagation rtt", `Quick, test_rtt_reflects_per_flow_propagation);
    ("shared buffer conserved", `Quick, test_shared_buffer_conserved);
    ("single flow degenerates", `Quick, test_single_flow_degenerates);
  ]
