(* Tests for canopy_cc: Cubic, Reno, Vegas, BBR behaviour and the
   evaluation runner. Each algorithm is checked both in isolation (unit
   reactions to ACK/loss feedback) and closed-loop on the simulator
   (literature-shaped outcomes: Cubic fills buffers, Vegas keeps delay
   low, BBR sits in between). *)

open Canopy_cc
module Env = Canopy_netsim.Env
module Trace = Canopy_trace.Trace

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)

let ack ?(now = 100) ?(rtt = 20) ?(seq = 0) ?(delivered = 1) () =
  { Env.now_ms = now; seq; rtt_ms = rtt; delivered }

(* ------------------------------------------------------------------ *)
(* Cubic *)

let test_cubic_slow_start_growth () =
  let c = Cubic.create ~initial_cwnd:10. () in
  check_bool "starts in slow start" true (Cubic.in_slow_start c);
  for i = 1 to 5 do
    Cubic.on_ack c (ack ~now:(100 + i) ())
  done;
  check_float "one packet per ack" 15. (Cubic.cwnd c)

let test_cubic_loss_reaction () =
  let c = Cubic.create ~initial_cwnd:100. () in
  Cubic.on_ack c (ack ());
  Cubic.on_loss c ~now_ms:200;
  check_bool "multiplicative decrease" true (Cubic.cwnd c < 101.);
  check_float "w_max anchored" 101. (Cubic.w_max c);
  check_bool "left slow start" false (Cubic.in_slow_start c)

let test_cubic_loss_guard () =
  (* A burst of drops within one RTT counts as a single event. *)
  let c = Cubic.create ~initial_cwnd:100. () in
  Cubic.on_ack c (ack ~rtt:50 ());
  Cubic.on_loss c ~now_ms:200;
  let after_first = Cubic.cwnd c in
  Cubic.on_loss c ~now_ms:205;
  check_float "second drop ignored" after_first (Cubic.cwnd c);
  Cubic.on_loss c ~now_ms:300;
  check_bool "later drop applies" true (Cubic.cwnd c < after_first)

let test_cubic_concave_recovery () =
  (* After a loss, congestion avoidance should climb back toward w_max. *)
  let c = Cubic.create ~initial_cwnd:100. () in
  Cubic.on_ack c (ack ~now:100 ~rtt:20 ());
  Cubic.on_loss c ~now_ms:150;
  let floor = Cubic.cwnd c in
  for i = 1 to 2000 do
    Cubic.on_ack c (ack ~now:(150 + (i * 5)) ~rtt:20 ())
  done;
  check_bool "recovered above the floor" true (Cubic.cwnd c > floor +. 5.);
  check_bool "approaches w_max region" true (Cubic.cwnd c > 0.8 *. Cubic.w_max c)

let test_cubic_force_cwnd () =
  let c = Cubic.create () in
  Cubic.force_cwnd c 500.;
  check_float "forced" 500. (Cubic.cwnd c);
  Cubic.force_cwnd c 0.5;
  check_float "clamped below" 2. (Cubic.cwnd c)

let test_cubic_controller_wrapper () =
  let c = Cubic.create ~initial_cwnd:10. () in
  let ctrl = Cubic.to_controller c in
  Alcotest.(check string) "name" "cubic" ctrl.Controller.name;
  ctrl.Controller.on_ack (ack ());
  check_float "wrapper forwards acks" 11. (ctrl.Controller.cwnd ())

(* ------------------------------------------------------------------ *)
(* Reno *)

let test_reno_slow_start_then_ca () =
  let r = Reno.create ~initial_cwnd:2. () in
  check_bool "slow start" true (Reno.in_slow_start r);
  Reno.on_loss r ~now_ms:100;
  check_bool "ca after loss" false (Reno.in_slow_start r);
  check_float "halved" 2. (Reno.cwnd r);
  (* additive increase: +1/cwnd per ack *)
  Reno.on_ack r (ack ~now:200 ());
  check_float "ai" 2.5 (Reno.cwnd r)

let test_reno_floor () =
  let r = Reno.create ~initial_cwnd:2. () in
  Reno.on_loss r ~now_ms:100;
  Reno.on_loss r ~now_ms:500;
  check_bool "never below 2" true (Reno.cwnd r >= 2.)

(* ------------------------------------------------------------------ *)
(* Vegas *)

let test_vegas_tracks_base_rtt () =
  let v = Vegas.create () in
  Vegas.on_ack v (ack ~now:50 ~rtt:40 ());
  Vegas.on_ack v (ack ~now:100 ~rtt:25 ());
  check_float "base rtt is min" 25. (Vegas.base_rtt_ms v)

let test_vegas_backs_off_on_delay () =
  (* Excess queueing (diff > beta) must shrink the window once per RTT. *)
  let v = Vegas.create ~initial_cwnd:50. () in
  Vegas.on_ack v (ack ~now:10 ~rtt:20 ());
  let before = Vegas.cwnd v in
  (* inflate RTT: diff = cwnd*(1 - 20/60) = large *)
  for i = 1 to 100 do
    Vegas.on_ack v (ack ~now:(10 + (i * 2)) ~rtt:60 ())
  done;
  check_bool "window reduced" true (Vegas.cwnd v < before)

let test_vegas_grows_when_uncongested () =
  let v = Vegas.create ~initial_cwnd:10. () in
  let before = Vegas.cwnd v in
  for i = 1 to 100 do
    Vegas.on_ack v (ack ~now:(i * 2) ~rtt:20 ())
  done;
  check_bool "window grew" true (Vegas.cwnd v > before)

let test_vegas_loss_reaction () =
  let v = Vegas.create ~initial_cwnd:40. () in
  Vegas.on_ack v (ack ~rtt:20 ());
  let before = Vegas.cwnd v in
  Vegas.on_loss v ~now_ms:100;
  check_float "3/4 backoff" (0.75 *. before) (Vegas.cwnd v)

let test_vegas_alpha_beta_validation () =
  Alcotest.check_raises "alpha > beta"
    (Invalid_argument "Vegas.create: alpha > beta") (fun () ->
      ignore (Vegas.create ~alpha:5. ~beta:2. ()))

(* ------------------------------------------------------------------ *)
(* BBR *)

let test_bbr_starts_in_startup () =
  Alcotest.(check string) "mode" "startup" (Bbr.mode (Bbr.create ()))

let test_bbr_estimates () =
  let b = Bbr.create () in
  check_float "no bw yet" 0. (Bbr.btl_bw_pkts_per_ms b);
  (* feed a steady 2 pkts/ms delivery at 20ms RTT *)
  for i = 1 to 100 do
    Bbr.on_ack b (ack ~now:(i * 10) ~rtt:20 ~delivered:(i * 20) ())
  done;
  check_float "rt_prop" 20. (Bbr.rt_prop_ms b);
  check_bool "bw near 2 pkt/ms" true
    (Float.abs (Bbr.btl_bw_pkts_per_ms b -. 2.) < 0.5)

let test_bbr_leaves_startup_on_plateau () =
  let b = Bbr.create () in
  for i = 1 to 300 do
    Bbr.on_ack b (ack ~now:(i * 10) ~rtt:20 ~delivered:(i * 20) ())
  done;
  check_bool "left startup" true (Bbr.mode b <> "startup")

let test_bbr_cwnd_tracks_bdp () =
  let b = Bbr.create () in
  for i = 1 to 400 do
    Bbr.on_ack b (ack ~now:(i * 10) ~rtt:20 ~delivered:(i * 20) ())
  done;
  (* bdp = 2 pkt/ms * 20 ms = 40 pkts; probe gains within [0.75, 1.25] *)
  check_bool "cwnd near bdp" true
    (Bbr.cwnd b >= 25. && Bbr.cwnd b <= 60.)

let test_bbr_loss_tolerant () =
  let b = Bbr.create ~initial_cwnd:100. () in
  let before = Bbr.cwnd b in
  Bbr.on_loss b ~now_ms:10;
  check_bool "small reaction only" true (Bbr.cwnd b >= 0.9 *. before)

(* ------------------------------------------------------------------ *)
(* Closed-loop comparisons on the simulator (the Fig. 10/11 shape) *)

let closed_loop make =
  let trace = Trace.constant ~name:"c48" ~duration_ms:8000 ~mbps:48. in
  let metrics, _ =
    Runner.run ~trace ~min_rtt_ms:40
      ~buffer_pkts:(Runner.buffer_of_bdp ~bdp_multiplier:2. ~trace ~min_rtt_ms:40)
      ~duration_ms:8000 make
  in
  metrics

let test_closed_loop_cubic_fills_link () =
  let m = closed_loop (fun () -> Cubic.to_controller (Cubic.create ())) in
  check_bool "high utilization" true (m.Runner.utilization > 0.9);
  check_bool "bufferbloat delays" true (m.Runner.p95_qdelay_ms > 30.)

let test_closed_loop_vegas_low_delay () =
  let m = closed_loop (fun () -> Vegas.to_controller (Vegas.create ())) in
  check_bool "low delay" true (m.Runner.p95_qdelay_ms < 10.);
  check_bool "decent utilization" true (m.Runner.utilization > 0.7)

let test_closed_loop_bbr_in_between () =
  let m = closed_loop (fun () -> Bbr.to_controller (Bbr.create ())) in
  check_bool "good utilization" true (m.Runner.utilization > 0.85);
  check_bool "moderate delay" true (m.Runner.p95_qdelay_ms < 40.)

let test_closed_loop_ordering () =
  (* The qualitative ordering the paper's evaluation plots rely on. *)
  let cubic = closed_loop (fun () -> Cubic.to_controller (Cubic.create ())) in
  let vegas = closed_loop (fun () -> Vegas.to_controller (Vegas.create ())) in
  check_bool "cubic beats vegas on throughput" true
    (cubic.Runner.utilization > vegas.Runner.utilization);
  check_bool "vegas beats cubic on delay" true
    (vegas.Runner.p95_qdelay_ms < cubic.Runner.p95_qdelay_ms)

let test_runner_series () =
  let trace = Trace.constant ~name:"c12" ~duration_ms:2000 ~mbps:12. in
  let _, series =
    Runner.run ~series_bin_ms:100 ~trace ~min_rtt_ms:20 ~buffer_pkts:50
      ~duration_ms:2000 (fun () -> Cubic.to_controller (Cubic.create ()))
  in
  match series with
  | None -> Alcotest.fail "expected series"
  | Some s ->
      Alcotest.(check int) "bins" 20 (Array.length s.Runner.throughput_mbps);
      check_float "capacity per bin" 12. s.Runner.capacity_mbps.(5);
      check_bool "throughput bounded by capacity + slack" true
        (Array.for_all (fun x -> x <= 20.) s.Runner.throughput_mbps)

let test_buffer_of_bdp () =
  let trace = Trace.constant ~name:"c12" ~duration_ms:1000 ~mbps:12. in
  (* 12 Mbps × 100 ms = 100 pkts; 2 BDP = 200 *)
  Alcotest.(check int) "2 bdp" 200
    (Runner.buffer_of_bdp ~bdp_multiplier:2. ~trace ~min_rtt_ms:100);
  Alcotest.(check int) "at least 1" 1
    (Runner.buffer_of_bdp ~bdp_multiplier:0.001 ~trace ~min_rtt_ms:2)

let suite =
  [
    ("cubic slow start", `Quick, test_cubic_slow_start_growth);
    ("cubic loss reaction", `Quick, test_cubic_loss_reaction);
    ("cubic loss guard", `Quick, test_cubic_loss_guard);
    ("cubic concave recovery", `Quick, test_cubic_concave_recovery);
    ("cubic force_cwnd", `Quick, test_cubic_force_cwnd);
    ("cubic controller wrapper", `Quick, test_cubic_controller_wrapper);
    ("reno slow start/ca", `Quick, test_reno_slow_start_then_ca);
    ("reno floor", `Quick, test_reno_floor);
    ("vegas base rtt", `Quick, test_vegas_tracks_base_rtt);
    ("vegas backs off on delay", `Quick, test_vegas_backs_off_on_delay);
    ("vegas grows uncongested", `Quick, test_vegas_grows_when_uncongested);
    ("vegas loss reaction", `Quick, test_vegas_loss_reaction);
    ("vegas param validation", `Quick, test_vegas_alpha_beta_validation);
    ("bbr startup mode", `Quick, test_bbr_starts_in_startup);
    ("bbr estimates", `Quick, test_bbr_estimates);
    ("bbr leaves startup", `Quick, test_bbr_leaves_startup_on_plateau);
    ("bbr cwnd tracks bdp", `Quick, test_bbr_cwnd_tracks_bdp);
    ("bbr loss tolerant", `Quick, test_bbr_loss_tolerant);
    ("closed loop: cubic", `Quick, test_closed_loop_cubic_fills_link);
    ("closed loop: vegas", `Quick, test_closed_loop_vegas_low_delay);
    ("closed loop: bbr", `Quick, test_closed_loop_bbr_in_between);
    ("closed loop: ordering", `Quick, test_closed_loop_ordering);
    ("runner time series", `Quick, test_runner_series);
    ("buffer_of_bdp", `Quick, test_buffer_of_bdp);
  ]

(* ------------------------------------------------------------------ *)
(* PCC Vivace *)

let test_vivace_validation () =
  Alcotest.check_raises "exponent"
    (Invalid_argument "Vivace.create: utility exponent") (fun () ->
      ignore (Vivace.create ~utility_exponent:1.5 ()))

let test_vivace_rate_accessors () =
  let v = Vivace.create ~initial_rate_pkts_per_ms:2. () in
  check_float "initial rate" 2. (Vivace.rate_pkts_per_ms v);
  check_float "no utility yet" 0. (Vivace.utility v);
  check_bool "cwnd positive" true (Vivace.cwnd v >= 2.)

let vivace_closed_loop ?(mbps = 48.) ?(ms = 15_000) () =
  let trace = Trace.constant ~name:"c" ~duration_ms:ms ~mbps in
  let metrics, _ =
    Runner.run ~trace ~min_rtt_ms:40
      ~buffer_pkts:
        (Runner.buffer_of_bdp ~bdp_multiplier:2. ~trace ~min_rtt_ms:40)
      ~duration_ms:ms
      (fun () -> Vivace.to_controller (Vivace.create ()))
  in
  metrics

let test_vivace_fills_stable_link () =
  let m = vivace_closed_loop () in
  check_bool "high utilization" true (m.Runner.utilization > 0.85);
  check_bool "low delay" true (m.Runner.p95_qdelay_ms < 20.)

let test_vivace_tracks_capacity_down () =
  (* On a step-down link the latency-gradient/loss terms must pull the
     rate back: loss stays moderate despite halvings of capacity. *)
  let trace =
    Canopy_trace.Synthetic.step_fluctuation ~duration_ms:15_000
      ~period_ms:2_000 ~low_mbps:12. ~high_mbps:48. ()
  in
  let m, _ =
    Runner.run ~trace ~min_rtt_ms:40
      ~buffer_pkts:
        (Runner.buffer_of_bdp ~bdp_multiplier:2. ~trace ~min_rtt_ms:40)
      ~duration_ms:15_000
      (fun () -> Vivace.to_controller (Vivace.create ()))
  in
  check_bool "keeps utilization" true (m.Runner.utilization > 0.6);
  check_bool "bounded loss" true (m.Runner.loss_rate < 0.05)

let test_vivace_utility_rewards_throughput () =
  (* With everything else equal, feeding more acks per interval must not
     lower the measured utility (x^t is increasing). Drive two fresh
     instances through synthetic ack streams. *)
  let drive acks_per_mi =
    let v = Vivace.create () in
    (* establish srtt = 20 *)
    Vivace.on_ack v (ack ~now:1 ~rtt:20 ());
    (* one full warmup + measurement interval: events at 41..80 *)
    for i = 1 to acks_per_mi do
      Vivace.on_ack v (ack ~now:(41 + (i * 39 / acks_per_mi)) ~rtt:20 ())
    done;
    (* close the interval *)
    Vivace.on_ack v (ack ~now:100 ~rtt:20 ());
    Vivace.utility v
  in
  check_bool "more acks, more utility" true (drive 40 >= drive 10)

let vivace_suite =
  [
    ("vivace validation", `Quick, test_vivace_validation);
    ("vivace accessors", `Quick, test_vivace_rate_accessors);
    ("vivace fills stable link", `Quick, test_vivace_fills_stable_link);
    ("vivace tracks capacity down", `Quick, test_vivace_tracks_capacity_down);
    ("vivace utility monotone in throughput", `Quick,
      test_vivace_utility_rewards_throughput);
  ]

(* ------------------------------------------------------------------ *)
(* Property-based invariants over the controllers *)

let qcheck_cc =
  let open QCheck in
  let ack_stream =
    (* random feedback sequences: (dt_ms, rtt_ms, is_loss) triples *)
    list_of_size Gen.(10 -- 200)
      (triple (int_range 1 50) (int_range 20 300) bool)
  in
  let drive_controller make stream =
    let ctrl = make () in
    let now = ref 0 in
    let delivered = ref 0 in
    List.iter
      (fun (dt, rtt, is_loss) ->
        now := !now + dt;
        if is_loss then ctrl.Controller.on_loss ~now_ms:!now
        else begin
          incr delivered;
          ctrl.Controller.on_ack
            { Env.now_ms = !now; seq = !delivered; rtt_ms = rtt;
              delivered = !delivered }
        end)
      stream;
    ctrl.Controller.cwnd ()
  in
  [
    Test.make ~name:"cubic window finite and >= 2 under any feedback"
      ~count:100 ack_stream
      (fun stream ->
        let w =
          drive_controller
            (fun () -> Cubic.to_controller (Cubic.create ()))
            stream
        in
        Float.is_finite w && w >= 2.);
    Test.make ~name:"reno window finite and >= 2 under any feedback"
      ~count:100 ack_stream
      (fun stream ->
        let w =
          drive_controller (fun () -> Reno.to_controller (Reno.create ())) stream
        in
        Float.is_finite w && w >= 2.);
    Test.make ~name:"vegas window finite and >= 2 under any feedback"
      ~count:100 ack_stream
      (fun stream ->
        let w =
          drive_controller
            (fun () -> Vegas.to_controller (Vegas.create ()))
            stream
        in
        Float.is_finite w && w >= 2.);
    Test.make ~name:"bbr window finite and >= 4 under any feedback"
      ~count:100 ack_stream
      (fun stream ->
        let w =
          drive_controller (fun () -> Bbr.to_controller (Bbr.create ())) stream
        in
        Float.is_finite w && w >= 4.);
    Test.make ~name:"vivace window finite and >= 2 under any feedback"
      ~count:100 ack_stream
      (fun stream ->
        let w =
          drive_controller
            (fun () -> Vivace.to_controller (Vivace.create ()))
            stream
        in
        Float.is_finite w && w >= 2.);
  ]

let suite = suite @ vivace_suite @ List.map QCheck_alcotest.to_alcotest qcheck_cc
