test/test_tensor.ml: Alcotest Array Canopy_tensor Canopy_util Float Gen List Mat QCheck QCheck_alcotest Test Vec
