test/test_netsim.ml: Alcotest Array Canopy_netsim Canopy_trace Canopy_util Float Gen List Printf QCheck QCheck_alcotest Test
