test/test_util.ml: Alcotest Array Canopy_util Fbuf Float Fun Gen List Mathx Printf Prng QCheck QCheck_alcotest Ring Stats Test
