test/test_absint.ml: Alcotest Array Box Canopy_absint Canopy_nn Canopy_tensor Canopy_util Float Format Gen Ibp Interval Layer List Mlp Printf QCheck QCheck_alcotest Test
