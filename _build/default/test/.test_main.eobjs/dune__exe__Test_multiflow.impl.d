test/test_multiflow.ml: Alcotest Array Canopy_cc Canopy_netsim Canopy_trace Controller Cubic Vegas
