test/test_cc.ml: Alcotest Array Bbr Canopy_cc Canopy_netsim Canopy_trace Controller Cubic Float Gen List QCheck QCheck_alcotest Reno Runner Test Vegas Vivace
