test/test_trace.ml: Alcotest Canopy_trace Filename Float Fun List Lte String Suite Synthetic Sys Trace
