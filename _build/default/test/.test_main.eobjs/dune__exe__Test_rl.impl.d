test/test_rl.ml: Alcotest Array Canopy_rl Canopy_util Filename Float Fun Printf Replay_buffer Sys Td3
