test/test_shield.ml: Alcotest Array Canopy Canopy_nn Canopy_orca Canopy_tensor Canopy_trace Canopy_util Certify Eval Layer List Mlp Printf Property Shield
