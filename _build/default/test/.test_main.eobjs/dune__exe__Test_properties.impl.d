test/test_properties.ml: Alcotest Array Box Canopy Canopy_absint Canopy_nn Canopy_orca Canopy_trace Canopy_util Checkpoint Float Ibp Interval Layer List Mlp Printf Zonotope
