test/test_zonotope.ml: Alcotest Array Box Canopy Canopy_absint Canopy_nn Canopy_orca Canopy_tensor Canopy_util Float Format Ibp Interval Layer List Mlp Zonotope
