test/test_nn.ml: Alcotest Array Canopy_nn Canopy_tensor Canopy_util Checkpoint Filename Float Fun Layer List Mat Mlp Optimizer Printf Sys Vec
