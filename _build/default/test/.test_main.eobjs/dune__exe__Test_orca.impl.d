test/test_orca.ml: Agent_env Alcotest Array Canopy_cc Canopy_netsim Canopy_orca Canopy_trace Canopy_util Float Gen List Monitor Observation QCheck QCheck_alcotest Reward Test
