test/test_temporal.ml: Alcotest Array Canopy Canopy_absint Canopy_nn Canopy_orca Canopy_tensor Canopy_util Certify Format Layer List Mat Mlp Property Temporal
