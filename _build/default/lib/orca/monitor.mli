(** Per-interval network-state monitoring (the kernel instrumentation of
    Section 5, in simulator form).

    A monitor accumulates ACK and loss feedback between monitoring steps
    and produces one {!Observation.t} per interval. An optional
    multiplicative noise source perturbs the observed queueing delay —
    the measurement-noise model of the robustness experiments (±μ uniform
    noise, Section 6.3). *)

type t

val create :
  ?delay_noise:(Canopy_util.Prng.t * float) ->
  min_rtt_ms:int ->
  unit ->
  t
(** [delay_noise (rng, mu)] multiplies each interval's observed queueing
    delay by a uniform factor in [\[1−mu, 1+mu\]]. *)

val handlers : t -> Canopy_netsim.Env.handlers
(** Feedback hooks to register with the simulator (chainable with the
    backbone controller's). *)

val take : t -> now_ms:int -> cwnd_pkts:float -> Observation.t
(** Close the current interval: build the observation and reset the
    accumulators. [cwnd_pkts] is the effective window that was enforced
    during the interval. *)

val srtt_ms : t -> float
(** Current smoothed RTT (EWMA over all ACKs seen). *)

val last_qdelay_noise : t -> float
(** The noise factor applied to the most recent observation (1.0 when
    noise is disabled) — exposed for tests. *)
