lib/orca/agent_env.mli: Canopy_netsim Canopy_trace Canopy_util Observation Reward
