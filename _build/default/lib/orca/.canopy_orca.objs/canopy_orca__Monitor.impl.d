lib/orca/monitor.ml: Canopy_netsim Canopy_util Float Observation
