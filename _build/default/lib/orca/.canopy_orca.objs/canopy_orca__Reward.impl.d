lib/orca/reward.ml: Canopy_netsim Canopy_util Float Observation
