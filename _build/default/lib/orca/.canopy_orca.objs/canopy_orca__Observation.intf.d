lib/orca/observation.mli: Format
