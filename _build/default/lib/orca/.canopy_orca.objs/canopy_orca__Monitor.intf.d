lib/orca/monitor.mli: Canopy_netsim Canopy_util Observation
