lib/orca/observation.ml: Array Canopy_util Format
