lib/orca/reward.mli: Observation
