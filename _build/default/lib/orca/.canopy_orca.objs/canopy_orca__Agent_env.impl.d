lib/orca/agent_env.ml: Array Canopy_cc Canopy_netsim Canopy_trace Canopy_util Float Monitor Observation Reward
