(** Orca's heuristic "power"-style reward (Eqs. 2–3).

    [R = ((THR − ζ·l) / DELAY') / (THR_max / d_min)] where [l] is the
    loss throughput, [DELAY'] forgives RTTs within [β·d_min] of the
    propagation floor, and [THR_max] normalizes by the best throughput
    seen so far on the link. *)

type config = {
  zeta : float;  (** weight of loss relative to throughput *)
  beta : float;  (** forgiveness band multiplier, > 1 *)
  clip_lo : float;  (** lower clamp on the final reward *)
  clip_hi : float;
}

val default_config : config
(** ζ = 5, β = 1.25, clipped to [\[-1, 1\]]. *)

type t
(** Stateful: tracks THR_max across a training run. *)

val create : ?config:config -> unit -> t
val thr_max_mbps : t -> float

val of_observation : t -> Observation.t -> float
(** Reward for one monitoring interval; updates THR_max. *)
