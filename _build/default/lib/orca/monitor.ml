type t = {
  min_rtt_ms : int;
  delay_noise : (Canopy_util.Prng.t * float) option;
  mutable acks : int;
  mutable losses : int;
  mutable rtt_sum_ms : float;
  mutable srtt_ms : float;
  mutable last_take_ms : int;
  mutable last_noise : float;
}

let create ?delay_noise ~min_rtt_ms () =
  (match delay_noise with
  | Some (_, mu) when mu < 0. || mu >= 1. ->
      invalid_arg "Monitor.create: noise amplitude"
  | _ -> ());
  {
    min_rtt_ms;
    delay_noise;
    acks = 0;
    losses = 0;
    rtt_sum_ms = 0.;
    srtt_ms = 0.;
    last_take_ms = 0;
    last_noise = 1.;
  }

let handlers t =
  {
    Canopy_netsim.Env.on_ack =
      (fun ack ->
        t.acks <- t.acks + 1;
        let rtt = float_of_int ack.rtt_ms in
        t.rtt_sum_ms <- t.rtt_sum_ms +. rtt;
        t.srtt_ms <-
          (if t.srtt_ms = 0. then rtt
           else (0.875 *. t.srtt_ms) +. (0.125 *. rtt)));
    on_loss = (fun ~now_ms:_ -> t.losses <- t.losses + 1);
  }

let srtt_ms t = t.srtt_ms
let last_qdelay_noise t = t.last_noise

let take t ~now_ms ~cwnd_pkts =
  let interval_ms = max 1 (now_ms - t.last_take_ms) in
  let avg_rtt =
    if t.acks = 0 then float_of_int t.min_rtt_ms
    else t.rtt_sum_ms /. float_of_int t.acks
  in
  let qdelay = Float.max 0. (avg_rtt -. float_of_int t.min_rtt_ms) in
  let noise =
    match t.delay_noise with
    | None -> 1.
    | Some (rng, mu) -> Canopy_util.Prng.uniform rng (1. -. mu) (1. +. mu)
  in
  t.last_noise <- noise;
  let thr_mbps =
    float_of_int t.acks *. float_of_int Canopy_netsim.Env.default_mtu *. 8.
    /. 1e6
    /. (float_of_int interval_ms /. 1000.)
  in
  let obs =
    {
      Observation.thr_mbps;
      loss_pkts = t.losses;
      avg_qdelay_ms = qdelay *. noise;
      n_acks = t.acks;
      interval_ms;
      srtt_ms = (if t.srtt_ms = 0. then avg_rtt else t.srtt_ms);
      cwnd_pkts;
      min_rtt_ms = float_of_int t.min_rtt_ms;
    }
  in
  t.acks <- 0;
  t.losses <- 0;
  t.rtt_sum_ms <- 0.;
  t.last_take_ms <- now_ms;
  obs
