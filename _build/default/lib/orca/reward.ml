type config = { zeta : float; beta : float; clip_lo : float; clip_hi : float }

let default_config = { zeta = 5.; beta = 1.25; clip_lo = -1.; clip_hi = 1. }

type t = { cfg : config; mutable thr_max_mbps : float }

let create ?(config = default_config) () =
  if config.beta <= 1. then invalid_arg "Reward.create: beta";
  { cfg = config; thr_max_mbps = 0. }

let thr_max_mbps t = t.thr_max_mbps

let of_observation t (o : Observation.t) =
  t.thr_max_mbps <- Float.max t.thr_max_mbps o.thr_mbps;
  if t.thr_max_mbps <= 0. then 0.
  else begin
    let d_min = o.min_rtt_ms in
    let delay = o.avg_qdelay_ms +. d_min (* average RTT *) in
    let delay' =
      if d_min <= delay && delay <= t.cfg.beta *. d_min then d_min else delay
    in
    let loss_mbps =
      float_of_int o.loss_pkts
      *. float_of_int Canopy_netsim.Env.default_mtu *. 8. /. 1e6
      /. (float_of_int o.interval_ms /. 1000.)
    in
    let r =
      (o.thr_mbps -. (t.cfg.zeta *. loss_mbps))
      /. delay' /. (t.thr_max_mbps /. d_min)
    in
    Canopy_util.Mathx.clamp ~lo:t.cfg.clip_lo ~hi:t.cfg.clip_hi r
  end
