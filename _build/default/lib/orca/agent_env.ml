module Env = Canopy_netsim.Env

type config = {
  trace : Canopy_trace.Trace.t;
  min_rtt_ms : int;
  buffer_pkts : int;
  duration_ms : int;
  history : int;
  interval_ms : int option;
  delay_noise : (Canopy_util.Prng.t * float) option;
  impairments : Env.impairments;
  reward : Reward.config;
}

let default_config ~trace ~min_rtt_ms ~buffer_pkts ~duration_ms =
  {
    trace;
    min_rtt_ms;
    buffer_pkts;
    duration_ms;
    history = 5;
    interval_ms = None;
    delay_noise = None;
    impairments = Env.no_impairments;
    reward = Reward.default_config;
  }

let state_dim cfg = cfg.history * Observation.feature_count

type t = {
  cfg : config;
  interval_ms : int;
  mutable env : Env.t;
  mutable cubic : Canopy_cc.Cubic.t;
  mutable monitor : Monitor.t;
  mutable reward : Reward.t;
  history : float array Canopy_util.Ring.t;
  mutable prev_cwnd : float;
  mutable thr_scale : float;
  mutable finished : bool;
}

let fresh_parts cfg =
  let env =
    Env.create
      {
        Env.trace = cfg.trace;
        min_rtt_ms = cfg.min_rtt_ms;
        buffer_pkts = cfg.buffer_pkts;
        mtu_bytes = Env.default_mtu;
        initial_cwnd = 10.;
        impairments = cfg.impairments;
      }
  in
  let cubic = Canopy_cc.Cubic.create () in
  let monitor =
    Monitor.create ?delay_noise:cfg.delay_noise ~min_rtt_ms:cfg.min_rtt_ms ()
  in
  (env, cubic, monitor)

let create (cfg : config) =
  if cfg.history <= 0 then invalid_arg "Agent_env.create: history";
  if cfg.duration_ms <= 0 then invalid_arg "Agent_env.create: duration";
  let interval_ms =
    match cfg.interval_ms with
    | Some ms ->
        if ms <= 0 then invalid_arg "Agent_env.create: interval";
        ms
    | None -> max 20 cfg.min_rtt_ms
  in
  let env, cubic, monitor = fresh_parts cfg in
  let history = Canopy_util.Ring.create ~capacity:cfg.history in
  for _ = 1 to cfg.history do
    Canopy_util.Ring.push history Observation.zero_features
  done;
  {
    cfg;
    interval_ms;
    env;
    cubic;
    monitor;
    reward = Reward.create ~config:cfg.reward ();
    history;
    prev_cwnd = 10.;
    thr_scale = 0.;
    finished = false;
  }

let config t = t.cfg
let interval_ms t = t.interval_ms

let state (t : t) =
  Canopy_util.Ring.to_array t.history |> Array.to_list |> Array.concat

let reset (t : t) =
  let env, cubic, monitor = fresh_parts t.cfg in
  t.env <- env;
  t.cubic <- cubic;
  t.monitor <- monitor;
  t.reward <- Reward.create ~config:t.cfg.reward ();
  Canopy_util.Ring.clear t.history;
  for _ = 1 to t.cfg.history do
    Canopy_util.Ring.push t.history Observation.zero_features
  done;
  t.prev_cwnd <- 10.;
  t.thr_scale <- 0.;
  t.finished <- false;
  state t

type step_result = {
  state : float array;
  raw_reward : float;
  observation : Observation.t;
  features : float array;
  cwnd_tcp : float;
  cwnd_enforced : float;
  finished : bool;
}

let max_enforced = 50_000.
let min_enforced = 2.

(* Eq. 1 plus the window clamp the simulator enforces; the verifier lifts
   exactly this map so certificates speak about deployed behaviour. *)
let cwnd_of_action ~action ~cwnd_tcp =
  Canopy_util.Mathx.clamp ~lo:min_enforced ~hi:max_enforced
    (Canopy_util.Mathx.pow2 (2. *. action) *. cwnd_tcp)

let step (t : t) ~action =
  if t.finished then invalid_arg "Agent_env.step: episode finished";
  if Float.is_nan action || action < -1. || action > 1. then
    invalid_arg "Agent_env.step: action out of range";
  (* Eq. 1: CWND = 2^(2a) × CWND_TCP. The enforced value becomes the live
     window Cubic keeps adjusting inside the interval (the kernel socket's
     cwnd is the shared variable). *)
  let cwnd_tcp = Canopy_cc.Cubic.cwnd t.cubic in
  let cwnd_enforced = cwnd_of_action ~action ~cwnd_tcp in
  Canopy_cc.Cubic.force_cwnd t.cubic cwnd_enforced;
  Env.set_cwnd t.env cwnd_enforced;
  let handlers =
    Env.chain
      (Canopy_cc.Controller.handlers (Canopy_cc.Cubic.to_controller t.cubic))
      (Monitor.handlers t.monitor)
  in
  for _ = 1 to t.interval_ms do
    Env.tick t.env handlers;
    Env.set_cwnd t.env (Canopy_cc.Cubic.cwnd t.cubic)
  done;
  let obs =
    Monitor.take t.monitor ~now_ms:(Env.now_ms t.env)
      ~cwnd_pkts:cwnd_enforced
  in
  t.thr_scale <- Float.max t.thr_scale obs.Observation.thr_mbps;
  let features = Observation.to_features ~thr_scale_mbps:t.thr_scale obs in
  Canopy_util.Ring.push t.history features;
  let raw_reward = Reward.of_observation t.reward obs in
  t.prev_cwnd <- cwnd_enforced;
  if Env.now_ms t.env >= t.cfg.duration_ms then t.finished <- true;
  {
    state = state t;
    raw_reward;
    observation = obs;
    features;
    cwnd_tcp;
    cwnd_enforced;
    finished = t.finished;
  }

let prev_cwnd_enforced (t : t) = t.prev_cwnd
let cwnd_tcp (t : t) = Canopy_cc.Cubic.cwnd t.cubic
let env_stats (t : t) = Env.stats t.env
let utilization t = Env.utilization t.env
let avg_qdelay_ms t = Env.avg_qdelay_ms t.env
let qdelay_array_ms t = Env.qdelay_array_ms t.env
let loss_rate t = Env.loss_rate t.env
let thr_scale_mbps t = t.thr_scale
