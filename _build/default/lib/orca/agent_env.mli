(** The Orca RL environment: a bottleneck link with a Cubic backbone whose
    window a learned agent modulates at coarse monitoring steps.

    Each {!step} applies the agent's action [a ∈ \[-1,1\]] through Eq. 1
    ([CWND = 2^{2a} · CWND_TCP]), enforces the resulting window for one
    monitoring interval while Cubic keeps performing fine-grained control
    inside it, and returns the next agent state (the concatenated feature
    frames of the past [history] observations) together with the raw
    reward. *)

type config = {
  trace : Canopy_trace.Trace.t;
  min_rtt_ms : int;
  buffer_pkts : int;
  duration_ms : int;  (** episode length *)
  history : int;  (** k past observation frames in the state *)
  interval_ms : int option;  (** monitoring period; default max(20, minRTT) *)
  delay_noise : (Canopy_util.Prng.t * float) option;
      (** multiplicative noise on the observed queueing delay *)
  impairments : Canopy_netsim.Env.impairments;
      (** link pathologies (random loss, ACK jitter) *)
  reward : Reward.config;
}

val default_config :
  trace:Canopy_trace.Trace.t ->
  min_rtt_ms:int ->
  buffer_pkts:int ->
  duration_ms:int ->
  config
(** history = 5, automatic interval, no noise, default reward. *)

val state_dim : config -> int
(** [history × Observation.feature_count]. *)

type t

val create : config -> t
val config : t -> config
val interval_ms : t -> int

val reset : t -> float array
(** Rebuild the link and backbone from scratch; returns the initial
    (zero-history) state. *)

type step_result = {
  state : float array;  (** next agent state *)
  raw_reward : float;  (** Orca reward for the elapsed interval *)
  observation : Observation.t;  (** the interval's observation *)
  features : float array;  (** the newest normalized frame *)
  cwnd_tcp : float;  (** Cubic's suggestion before enforcement (CWND_TCP) *)
  cwnd_enforced : float;  (** the window actually applied (Eq. 1) *)
  finished : bool;  (** episode reached [duration_ms] *)
}

val step : t -> action:float -> step_result
(** Raises [Invalid_argument] if the action is outside [\[-1,1\]] or the
    episode already finished. *)

val cwnd_of_action : action:float -> cwnd_tcp:float -> float
(** Eq. 1 with the simulator's window clamp: monotone in [action] for a
    fixed suggestion, which is what lets the verifier propagate action
    intervals through it exactly. *)

val min_enforced : float
val max_enforced : float

val prev_cwnd_enforced : t -> float
(** The window enforced during the previous step (CWND_{i−1} of the
    performance property); equals the initial window before any step. *)

val cwnd_tcp : t -> float
(** Cubic's current window suggestion — the CWND_TCP that the next
    {!step}'s Eq. 1 will scale. The verifier uses this to turn an
    abstract action interval into an abstract CWND interval. *)

val state : t -> float array
(** Current agent state without advancing the environment. *)

val env_stats : t -> Canopy_netsim.Env.stats
val utilization : t -> float
val avg_qdelay_ms : t -> float
val qdelay_array_ms : t -> float array
val loss_rate : t -> float
val thr_scale_mbps : t -> float
(** Running THR_max used for feature normalization. *)
