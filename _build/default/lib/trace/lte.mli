(** LTE-like highly-variable bandwidth traces (Figs. 18–19).

    The paper evaluates on four real cellular traces from Winstein et al.
    that are not shippable here; this generator substitutes a two-state
    Markov-modulated rate process — a "good" regime with large jittery
    capacity and a "fade" regime with deep capacity collapses — which
    reproduces the qualitative stress pattern of commercial LTE downlinks:
    tens-of-Mbps means, per-100ms jitter, and multi-second deep fades. *)

type params = {
  mean_good_mbps : float;  (** average capacity in the good regime *)
  mean_fade_mbps : float;  (** average capacity during fades *)
  jitter : float;  (** per-sample multiplicative jitter amplitude, 0..1 *)
  good_dwell_ms : float;  (** mean dwell time in the good regime *)
  fade_dwell_ms : float;  (** mean dwell time in a fade *)
  sample_ms : int;  (** capacity-sample granularity *)
}

val default_params : params

val generate :
  ?params:params -> name:string -> seed:int -> duration_ms:int -> unit -> Trace.t
(** Deterministic for a given seed. *)

val standard_suite : ?duration_ms:int -> unit -> Trace.t list
(** The four evaluation traces ("att", "verizon", "tmobile-a",
    "tmobile-b") with fixed seeds and per-carrier parameter tweaks. *)
