(** The 22-trace evaluation suite of Section 6.1: 18 synthetic plus 4
    LTE-like traces. *)

val synthetic : ?duration_ms:int -> unit -> Trace.t list
val lte : ?duration_ms:int -> unit -> Trace.t list
val all : ?duration_ms:int -> unit -> Trace.t list

type category = Synthetic | Real

val category_of : Trace.t -> category
(** Classify a suite trace by its name prefix. *)

val pp_category : Format.formatter -> category -> unit
