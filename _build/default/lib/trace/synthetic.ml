let ramp_step_ms = 200
(* Granularity of the piecewise-linear ramps: one segment per 200 ms keeps
   segment counts small while looking smooth at the RTT timescale. *)

let step_fluctuation ?name ~duration_ms ~period_ms ~low_mbps ~high_mbps () =
  if period_ms <= 0 || duration_ms <= 0 then
    invalid_arg "Synthetic.step_fluctuation: durations";
  if low_mbps < 0. || high_mbps < low_mbps then
    invalid_arg "Synthetic.step_fluctuation: rates";
  let name =
    match name with
    | Some n -> n
    | None ->
        Printf.sprintf "step-%g-%g-p%d" low_mbps high_mbps period_ms
  in
  let segments = ref [] in
  let t = ref 0 in
  let high = ref true in
  while !t < duration_ms do
    let dur = min period_ms (duration_ms - !t) in
    segments := (dur, if !high then high_mbps else low_mbps) :: !segments;
    high := not !high;
    t := !t + dur
  done;
  Trace.of_segments ~name (List.rev !segments)

let ramp segments_of_cycle ?name ~gen_name ~duration_ms ~cycle_ms ~floor_mbps
    ~peak_mbps () =
  if cycle_ms < 2 * ramp_step_ms || duration_ms <= 0 then
    invalid_arg "Synthetic.ramp: durations";
  if floor_mbps < 0. || peak_mbps < floor_mbps then
    invalid_arg "Synthetic.ramp: rates";
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%s-%g-%g-c%d" gen_name floor_mbps peak_mbps cycle_ms
  in
  let cycle = segments_of_cycle ~cycle_ms ~floor_mbps ~peak_mbps in
  let segments = ref [] in
  let t = ref 0 in
  while !t < duration_ms do
    List.iter
      (fun (dur, rate) ->
        if !t < duration_ms then begin
          let dur = min dur (duration_ms - !t) in
          segments := (dur, rate) :: !segments;
          t := !t + dur
        end)
      cycle
  done;
  Trace.of_segments ~name (List.rev !segments)

let ramp_drop ?name ~duration_ms ~cycle_ms ~floor_mbps ~peak_mbps () =
  let segments_of_cycle ~cycle_ms ~floor_mbps ~peak_mbps =
    let steps = cycle_ms / ramp_step_ms in
    List.init steps (fun i ->
        let frac = float_of_int i /. float_of_int (max 1 (steps - 1)) in
        (ramp_step_ms, Canopy_util.Mathx.lerp floor_mbps peak_mbps frac))
  in
  ramp segments_of_cycle ?name ~gen_name:"rampdrop" ~duration_ms ~cycle_ms
    ~floor_mbps ~peak_mbps ()

let triangle ?name ~duration_ms ~cycle_ms ~floor_mbps ~peak_mbps () =
  let segments_of_cycle ~cycle_ms ~floor_mbps ~peak_mbps =
    let steps = cycle_ms / ramp_step_ms in
    let half = max 1 (steps / 2) in
    List.init steps (fun i ->
        let frac =
          if i < half then float_of_int i /. float_of_int half
          else float_of_int (steps - i) /. float_of_int (steps - half)
        in
        (ramp_step_ms, Canopy_util.Mathx.lerp floor_mbps peak_mbps frac))
  in
  ramp segments_of_cycle ?name ~gen_name:"triangle" ~duration_ms ~cycle_ms
    ~floor_mbps ~peak_mbps ()

let standard_suite ?(duration_ms = 30_000) () =
  (* Six parameterizations per family spanning the Table-2 bandwidth
     range [6, 192] Mbps. *)
  let steps =
    List.map
      (fun (low, high, period) ->
        step_fluctuation ~duration_ms ~period_ms:period ~low_mbps:low
          ~high_mbps:high ())
      [
        (6., 24., 2000);
        (12., 48., 2000);
        (24., 96., 3000);
        (48., 192., 3000);
        (6., 96., 4000);
        (12., 192., 5000);
      ]
  in
  let rampdrops =
    List.map
      (fun (floor, peak, cycle) ->
        ramp_drop ~duration_ms ~cycle_ms:cycle ~floor_mbps:floor
          ~peak_mbps:peak ())
      [ (6., 48., 4000); (12., 96., 5000); (24., 192., 6000) ]
  in
  let triangles =
    List.map
      (fun (floor, peak, cycle) ->
        triangle ~duration_ms ~cycle_ms:cycle ~floor_mbps:floor
          ~peak_mbps:peak ())
      [ (6., 48., 4000); (12., 96., 5000); (24., 192., 6000) ]
  in
  let steep_steps =
    (* Short-period variants stress reaction speed. *)
    List.map
      (fun (low, high, period) ->
        step_fluctuation ~duration_ms ~period_ms:period ~low_mbps:low
          ~high_mbps:high ())
      [
        (6., 48., 800);
        (12., 96., 800);
        (24., 192., 1000);
        (6., 192., 1500);
        (48., 96., 600);
        (96., 192., 600);
      ]
  in
  steps @ rampdrops @ triangles @ steep_steps
