type params = {
  mean_good_mbps : float;
  mean_fade_mbps : float;
  jitter : float;
  good_dwell_ms : float;
  fade_dwell_ms : float;
  sample_ms : int;
}

let default_params =
  {
    mean_good_mbps = 48.;
    mean_fade_mbps = 4.;
    jitter = 0.45;
    good_dwell_ms = 2500.;
    fade_dwell_ms = 900.;
    sample_ms = 100;
  }

let generate ?(params = default_params) ~name ~seed ~duration_ms () =
  if duration_ms <= 0 then invalid_arg "Lte.generate: duration";
  if params.jitter < 0. || params.jitter >= 1. then
    invalid_arg "Lte.generate: jitter";
  let rng = Canopy_util.Prng.create seed in
  let nsamples = (duration_ms + params.sample_ms - 1) / params.sample_ms in
  let samples = Array.make nsamples 0. in
  let in_fade = ref false in
  (* Remaining dwell time of the current regime, in ms. *)
  let dwell = ref (Canopy_util.Prng.exponential rng ~rate:(1. /. params.good_dwell_ms)) in
  for i = 0 to nsamples - 1 do
    if !dwell <= 0. then begin
      in_fade := not !in_fade;
      let mean_dwell =
        if !in_fade then params.fade_dwell_ms else params.good_dwell_ms
      in
      dwell := Canopy_util.Prng.exponential rng ~rate:(1. /. mean_dwell)
    end;
    let base =
      if !in_fade then params.mean_fade_mbps else params.mean_good_mbps
    in
    let noise =
      Canopy_util.Prng.uniform rng (1. -. params.jitter) (1. +. params.jitter)
    in
    samples.(i) <- Float.max 0.5 (base *. noise);
    dwell := !dwell -. float_of_int params.sample_ms
  done;
  Trace.of_mbps_array ~name ~ms_per_sample:params.sample_ms samples

let standard_suite ?(duration_ms = 30_000) () =
  [
    generate ~name:"lte-att" ~seed:101 ~duration_ms ();
    generate
      ~params:{ default_params with mean_good_mbps = 72.; jitter = 0.55 }
      ~name:"lte-verizon" ~seed:202 ~duration_ms ();
    generate
      ~params:
        {
          default_params with
          mean_good_mbps = 30.;
          mean_fade_mbps = 2.;
          fade_dwell_ms = 1500.;
        }
      ~name:"lte-tmobile-a" ~seed:303 ~duration_ms ();
    generate
      ~params:
        { default_params with mean_good_mbps = 96.; good_dwell_ms = 1500. }
      ~name:"lte-tmobile-b" ~seed:404 ~duration_ms ();
  ]
