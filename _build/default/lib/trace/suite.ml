let synthetic ?duration_ms () = Synthetic.standard_suite ?duration_ms ()
let lte ?duration_ms () = Lte.standard_suite ?duration_ms ()
let all ?duration_ms () = synthetic ?duration_ms () @ lte ?duration_ms ()

type category = Synthetic | Real

let category_of t =
  let n = Trace.name t in
  if String.length n >= 4 && String.sub n 0 4 = "lte-" then Real
  else Synthetic

let pp_category ppf = function
  | Synthetic -> Format.fprintf ppf "synthetic"
  | Real -> Format.fprintf ppf "real"
