(** Bandwidth traces: link capacity as a function of time.

    A trace is a piecewise-constant capacity profile (Mbps per
    millisecond) with a name and a total duration; reading past the end
    wraps around, matching Mahimahi's trace-replay semantics. Traces drive
    the bottleneck link of {!Canopy_netsim}. *)

type t

val of_segments : name:string -> (int * float) list -> t
(** [of_segments ~name segments] builds a trace from
    [(duration_ms, mbps)] pieces played in order. Raises
    [Invalid_argument] on an empty list, non-positive durations, or
    negative rates. *)

val constant : name:string -> duration_ms:int -> mbps:float -> t

val of_mbps_array : name:string -> ms_per_sample:int -> float array -> t
(** One capacity sample per [ms_per_sample] milliseconds. *)

val name : t -> string
val duration_ms : t -> int

val mbps_at : t -> int -> float
(** Capacity during millisecond [ms]; wraps modulo the duration. Negative
    times are invalid. *)

val avg_mbps : t -> float
val min_mbps : t -> float
val max_mbps : t -> float

val scale : float -> t -> t
(** Multiply all capacities (e.g. to add calibrated noise studies). *)

val rename : string -> t -> t

val packets_per_ms : mtu_bytes:int -> t -> int -> float
(** Delivery opportunities (MTU-sized packets) available during the given
    millisecond. *)

val to_mahimahi : mtu_bytes:int -> t -> string
(** Render one full period in Mahimahi's packet-delivery-opportunity
    format: one line per opportunity carrying its millisecond timestamp. *)

val of_mahimahi : name:string -> mtu_bytes:int -> string -> t
(** Parse the Mahimahi format back into a per-ms trace. Raises [Failure]
    on malformed input. *)

val save : mtu_bytes:int -> t -> string -> unit
val load : name:string -> mtu_bytes:int -> string -> t
val pp : Format.formatter -> t -> unit
