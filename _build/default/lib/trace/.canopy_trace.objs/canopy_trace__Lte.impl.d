lib/trace/lte.ml: Array Canopy_util Float Trace
