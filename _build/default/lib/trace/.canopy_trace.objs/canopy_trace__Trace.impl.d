lib/trace/trace.ml: Array Buffer Float Format Fun List String
