lib/trace/lte.mli: Trace
