lib/trace/suite.mli: Format Trace
