lib/trace/trace.mli: Format
