lib/trace/suite.ml: Format Lte String Synthetic Trace
