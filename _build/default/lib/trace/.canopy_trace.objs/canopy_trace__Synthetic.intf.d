lib/trace/synthetic.mli: Trace
