lib/trace/synthetic.ml: Canopy_util List Printf Trace
