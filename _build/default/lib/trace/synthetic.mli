(** Synthetic bandwidth-trace families (Appendix B, Figs. 15–17).

    Three generators for traces with controlled but sudden/frequent
    capacity variation, plus the standard 18-trace evaluation set built
    from them. *)

val step_fluctuation :
  ?name:string ->
  duration_ms:int ->
  period_ms:int ->
  low_mbps:float ->
  high_mbps:float ->
  unit ->
  Trace.t
(** Square wave between [low] and [high] every [period_ms] (Fig. 15). *)

val ramp_drop :
  ?name:string ->
  duration_ms:int ->
  cycle_ms:int ->
  floor_mbps:float ->
  peak_mbps:float ->
  unit ->
  Trace.t
(** Capacity climbs linearly from [floor] to [peak] over a cycle, then
    drops instantly back to [floor] (Fig. 16). *)

val triangle :
  ?name:string ->
  duration_ms:int ->
  cycle_ms:int ->
  floor_mbps:float ->
  peak_mbps:float ->
  unit ->
  Trace.t
(** Symmetric linear rise and fall (Fig. 17). *)

val standard_suite : ?duration_ms:int -> unit -> Trace.t list
(** The 18 synthetic evaluation traces: six parameterizations of each of
    the three families, spanning the Table-2 bandwidth range. Deterministic
    (no randomness involved). *)
