(** The properties Canopy certifies (Section 4.2).

    A property is a constraint φ(π, X, Y): for every state history in the
    precondition X, the controller's action must land in the
    postcondition Y.

    - The {e performance} property has two cases: when the normalized
      queueing delay of the past k steps stays in [\[p, 1\]] the window
      must not grow (ΔCWND ≤ 0), and when it stays in [\[0, q\]] the
      window must not shrink (ΔCWND ≥ 0).
    - The {e robustness} property bounds the controller's sensitivity:
      multiplying the observed state by any factor in [\[1−μ, 1+μ\]] must
      change the window by at most a fraction ε. *)

type performance_params = {
  p : float;  (** large-delay threshold on normalized delay, in (0,1) *)
  q : float;  (** small-delay threshold, in (0,1), q <= p *)
}

type robustness_params = {
  mu : float;  (** relative noise amplitude on the observed delay *)
  epsilon : float;  (** allowed relative CWND fluctuation *)
}

type t =
  | Performance of performance_params
  | Robustness of robustness_params

val performance : ?p:float -> ?q:float -> unit -> t
(** Defaults from Section 6.1: [p = 0.75], [q = 0.25]. Raises
    [Invalid_argument] on thresholds outside (0,1) or [q > p]. *)

val robustness : ?mu:float -> ?epsilon:float -> unit -> t
(** Defaults from Section 6.1: [mu = 0.05], [epsilon = 0.01]. *)

type case =
  | Large_delay  (** performance case 1: delay in [p,1], ΔCWND ≤ 0 *)
  | Small_delay  (** performance case 2: delay in [0,q], ΔCWND ≥ 0 *)
  | Noise  (** robustness: CWNDCHANGE within ±ε *)

val cases : t -> case list
val case_name : case -> string

val precondition_delay : t -> case -> Canopy_absint.Interval.t
(** The interval substituted for the delay dimension(s) of the abstract
    state under the given case. For [Noise] this is a relative factor
    interval [\[1−μ, 1+μ\]], to be multiplied into the observed delay. *)

val pp : Format.formatter -> t -> unit
