type performance_params = { p : float; q : float }
type robustness_params = { mu : float; epsilon : float }

type t =
  | Performance of performance_params
  | Robustness of robustness_params

let performance ?(p = 0.75) ?(q = 0.25) () =
  if not (p > 0. && p < 1. && q > 0. && q < 1.) then
    invalid_arg "Property.performance: thresholds must be in (0,1)";
  if q > p then invalid_arg "Property.performance: q > p";
  Performance { p; q }

let robustness ?(mu = 0.05) ?(epsilon = 0.01) () =
  if mu <= 0. || mu >= 1. then invalid_arg "Property.robustness: mu";
  if epsilon <= 0. then invalid_arg "Property.robustness: epsilon";
  Robustness { mu; epsilon }

type case = Large_delay | Small_delay | Noise

let cases = function
  | Performance _ -> [ Large_delay; Small_delay ]
  | Robustness _ -> [ Noise ]

let case_name = function
  | Large_delay -> "large-delay"
  | Small_delay -> "small-delay"
  | Noise -> "noise"

let precondition_delay t case =
  match (t, case) with
  | Performance { p; _ }, Large_delay -> Canopy_absint.Interval.make p 1.
  | Performance { q; _ }, Small_delay -> Canopy_absint.Interval.make 0. q
  | Robustness { mu; _ }, Noise ->
      Canopy_absint.Interval.make (1. -. mu) (1. +. mu)
  | Performance _, Noise | Robustness _, (Large_delay | Small_delay) ->
      invalid_arg "Property.precondition_delay: case mismatch"

let pp ppf = function
  | Performance { p; q } ->
      Format.fprintf ppf "performance(p=%.2f, q=%.2f)" p q
  | Robustness { mu; epsilon } ->
      Format.fprintf ppf "robustness(mu=%.3f, eps=%.3f)" mu epsilon
