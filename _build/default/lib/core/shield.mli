(** Runtime enforcement of the performance property — a "shield" in the
    sense of the certified-learning literature the paper builds on
    (Anderson et al.), derived directly from φ(π, X, Y).

    Certification tells you how often a policy provably satisfies the
    property; a shield makes the {e deployed} trajectory satisfy it
    unconditionally, by projecting each action into the property's
    admissible set whenever the observed state lies in a precondition:

    - all [k] observed normalized delays ≥ p  ⇒  clamp the action so
      [CWND ≤ CWND_{i−1}] (never grow the window under sustained high
      delay);
    - all [k] observed delays ≤ q  ⇒  clamp so [CWND ≥ CWND_{i−1}].

    The robustness property constrains the policy's sensitivity to
    unobserved perturbations, which cannot be enforced by projecting a
    single action, so {!create} rejects it. *)

type t

val create : property:Property.t -> history:int -> t
(** Raises [Invalid_argument] for a robustness property or a non-positive
    history. *)

type verdict =
  | Unconstrained  (** no precondition matched, action passed through *)
  | Clamped of {
      case : Property.case;
      original : float;
      enforced : float;
    }  (** the action was projected into the admissible set *)

val filter :
  t ->
  state:float array ->
  cwnd_tcp:float ->
  prev_cwnd:float ->
  action:float ->
  float * verdict
(** [filter t ~state ~cwnd_tcp ~prev_cwnd ~action] returns the action to
    actually apply. The returned action always satisfies the matched
    case's postcondition under Eq. 1 (up to the simulator's window
    clamp). *)

val interventions : t -> int
(** Number of {!filter} calls so far that returned [Clamped]. *)

val steps : t -> int
(** Total {!filter} calls. *)

val pp_verdict : Format.formatter -> verdict -> unit
