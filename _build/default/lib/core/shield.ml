module Observation = Canopy_orca.Observation
module Agent_env = Canopy_orca.Agent_env

type t = {
  p : float;
  q : float;
  history : int;
  mutable interventions : int;
  mutable steps : int;
}

let create ~property ~history =
  if history <= 0 then invalid_arg "Shield.create: history";
  match property with
  | Property.Performance { p; q } ->
      { p; q; history; interventions = 0; steps = 0 }
  | Property.Robustness _ ->
      invalid_arg "Shield.create: robustness is not runtime-enforceable"

type verdict =
  | Unconstrained
  | Clamped of { case : Property.case; original : float; enforced : float }

(* The largest (resp. smallest) action whose Eq.-1 window stays at or
   below (resp. above) the previous window. Because the window map is
   clamped below at min_enforced, a bound outside [-1,1] simply clips. *)
let boundary_action ~cwnd_tcp ~prev_cwnd =
  Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1.
    (0.5 *. Canopy_util.Mathx.log2 (prev_cwnd /. cwnd_tcp))

let filter t ~state ~cwnd_tcp ~prev_cwnd ~action =
  if Array.length state <> t.history * Observation.feature_count then
    invalid_arg "Shield.filter: state dimension";
  t.steps <- t.steps + 1;
  let delays =
    List.map (fun i -> state.(i)) (Certify.delay_indices ~history:t.history)
  in
  let matched =
    if List.for_all (fun d -> d >= t.p) delays then Some Property.Large_delay
    else if List.for_all (fun d -> d <= t.q) delays then
      Some Property.Small_delay
    else None
  in
  match matched with
  | None -> (action, Unconstrained)
  | Some case ->
      let bound = boundary_action ~cwnd_tcp ~prev_cwnd in
      let enforced =
        match case with
        | Property.Large_delay -> Float.min action bound
        | Property.Small_delay -> Float.max action bound
        | Property.Noise -> assert false
      in
      (* Due to the window clamp, an action at the bound can still land
         exactly on prev_cwnd (ΔCWND = 0), which satisfies both cases. *)
      if enforced = action then (action, Unconstrained)
      else begin
        t.interventions <- t.interventions + 1;
        (enforced, Clamped { case; original = action; enforced })
      end

let interventions t = t.interventions
let steps t = t.steps

let pp_verdict ppf = function
  | Unconstrained -> Format.fprintf ppf "unconstrained"
  | Clamped { case; original; enforced } ->
      Format.fprintf ppf "clamped[%s] %.3f -> %.3f"
        (Property.case_name case) original enforced
