lib/core/trainer.ml: Array Canopy_cc Canopy_nn Canopy_orca Canopy_rl Canopy_trace Canopy_util Certify Filename Fun List Logs Printf Property String Sys
