lib/core/shield.mli: Format Property
