lib/core/temporal.ml: Array Box Canopy_absint Canopy_nn Canopy_orca Canopy_util Certify Float Format Ibp Interval List Mlp Property Zonotope
