lib/core/trainer.mli: Canopy_nn Canopy_orca Canopy_rl Property
