lib/core/eval.mli: Canopy_cc Canopy_nn Canopy_trace Certify Format Mlp Property Shield
