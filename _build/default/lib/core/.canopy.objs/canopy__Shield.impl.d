lib/core/shield.ml: Array Canopy_orca Canopy_util Certify Float Format List Property
