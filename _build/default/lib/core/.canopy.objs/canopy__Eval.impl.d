lib/core/eval.ml: Array Canopy_cc Canopy_netsim Canopy_nn Canopy_orca Canopy_trace Canopy_util Certify Float Format List Mlp Option Shield
