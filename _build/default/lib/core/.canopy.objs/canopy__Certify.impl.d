lib/core/certify.ml: Array Box Canopy_absint Canopy_nn Canopy_orca Canopy_util Float Format Ibp Interval List Mlp Property Zonotope
