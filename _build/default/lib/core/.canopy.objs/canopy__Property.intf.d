lib/core/property.mli: Canopy_absint Format
