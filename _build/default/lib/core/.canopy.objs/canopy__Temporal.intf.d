lib/core/temporal.mli: Canopy_absint Canopy_nn Certify Format Interval Mlp Property
