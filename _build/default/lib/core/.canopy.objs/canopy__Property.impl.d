lib/core/property.ml: Canopy_absint Format
