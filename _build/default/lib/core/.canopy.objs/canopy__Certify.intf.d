lib/core/certify.mli: Canopy_absint Canopy_nn Format Interval Mlp Property
