open Canopy_nn
module Prng = Canopy_util.Prng

type config = {
  state_dim : int;
  action_dim : int;
  hidden : int;
  gamma : float;
  tau : float;
  actor_lr : float;
  critic_lr : float;
  policy_noise : float;
  noise_clip : float;
  policy_delay : int;
  exploration_noise : float;
  batch_size : int;
  buffer_capacity : int;
  warmup : int;
}

let default_config ~state_dim ~action_dim =
  {
    state_dim;
    action_dim;
    hidden = 64;
    gamma = 0.99;
    tau = 0.005;
    actor_lr = 1e-3;
    critic_lr = 1e-3;
    policy_noise = 0.2;
    noise_clip = 0.5;
    policy_delay = 2;
    exploration_noise = 0.1;
    batch_size = 64;
    buffer_capacity = 50_000;
    warmup = 256;
  }

type t = {
  cfg : config;
  rng : Prng.t;
  mutable actor : Mlp.t;
  mutable actor_target : Mlp.t;
  critic1 : Mlp.t;
  critic2 : Mlp.t;
  critic1_target : Mlp.t;
  critic2_target : Mlp.t;
  opt_actor : Optimizer.t;
  opt_critic1 : Optimizer.t;
  opt_critic2 : Optimizer.t;
  buffer : Replay_buffer.t;
  mutable update_calls : int;
}

let create ~rng cfg =
  if cfg.state_dim <= 0 || cfg.action_dim <= 0 then
    invalid_arg "Td3.create: dims";
  let actor =
    Mlp.actor ~rng ~in_dim:cfg.state_dim ~hidden:cfg.hidden
      ~out_dim:cfg.action_dim
  in
  let critic () =
    Mlp.critic ~rng ~state_dim:cfg.state_dim ~action_dim:cfg.action_dim
      ~hidden:cfg.hidden
  in
  let critic1 = critic () and critic2 = critic () in
  {
    cfg;
    rng;
    actor;
    actor_target = Mlp.copy actor;
    critic1;
    critic2;
    critic1_target = Mlp.copy critic1;
    critic2_target = Mlp.copy critic2;
    opt_actor = Optimizer.adam ~lr:cfg.actor_lr ();
    opt_critic1 = Optimizer.adam ~lr:cfg.critic_lr ();
    opt_critic2 = Optimizer.adam ~lr:cfg.critic_lr ();
    buffer = Replay_buffer.create ~capacity:cfg.buffer_capacity;
    update_calls = 0;
  }

let config t = t.cfg
let actor t = t.actor
let buffer_size t = Replay_buffer.length t.buffer
let updates_done t = t.update_calls

let clamp_action = Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1.

let select_action ?(explore = false) t state =
  let a = Mlp.forward t.actor state in
  if explore then
    Array.map
      (fun x ->
        clamp_action
          (x +. Prng.gaussian_scaled t.rng ~mu:0. ~sigma:t.cfg.exploration_noise))
      a
  else Array.map clamp_action a

let observe t tr =
  if Array.length tr.Replay_buffer.state <> t.cfg.state_dim then
    invalid_arg "Td3.observe: state dim";
  Replay_buffer.add t.buffer tr

(* Q-value of a (state, action) batch under a critic, eval mode. *)
let q_eval critic state action =
  (Mlp.forward critic (Array.append state action)).(0)

let critic_update t (batch : Replay_buffer.transition array) =
  let cfg = t.cfg in
  let n = Array.length batch in
  (* Bellman targets with target-policy smoothing and clipped double-Q. *)
  let targets =
    Array.map
      (fun tr ->
        let a' = Mlp.forward t.actor_target tr.Replay_buffer.next_state in
        let a' =
          Array.map
            (fun x ->
              let noise =
                Canopy_util.Mathx.clamp ~lo:(-.cfg.noise_clip)
                  ~hi:cfg.noise_clip
                  (Prng.gaussian_scaled t.rng ~mu:0. ~sigma:cfg.policy_noise)
              in
              clamp_action (x +. noise))
            a'
        in
        let q1 = q_eval t.critic1_target tr.next_state a' in
        let q2 = q_eval t.critic2_target tr.next_state a' in
        let bootstrap = if tr.terminal then 0. else cfg.gamma *. Float.min q1 q2 in
        tr.reward +. bootstrap)
      batch
  in
  let inputs =
    Array.map
      (fun tr -> Array.append tr.Replay_buffer.state tr.action)
      batch
  in
  let fit critic opt =
    Mlp.zero_grad critic;
    let preds, tape = Mlp.forward_train critic inputs in
    let dout =
      Array.mapi
        (fun i q -> [| 2. *. (q.(0) -. targets.(i)) /. float_of_int n |])
        preds
    in
    ignore (Mlp.backward critic tape dout);
    let params = Mlp.params critic in
    Optimizer.clip_gradients ~norm:10. params;
    Optimizer.step opt params;
    (* Report the loss for monitoring. *)
    Array.to_list preds
    |> List.mapi (fun i q -> (q.(0) -. targets.(i)) ** 2.)
    |> Canopy_util.Mathx.fsum_list
    |> fun l -> l /. float_of_int n
  in
  let l1 = fit t.critic1 t.opt_critic1 in
  let l2 = fit t.critic2 t.opt_critic2 in
  ignore l1;
  ignore l2

let actor_update t (batch : Replay_buffer.transition array) =
  let cfg = t.cfg in
  let n = Array.length batch in
  let states = Array.map (fun tr -> tr.Replay_buffer.state) batch in
  Mlp.zero_grad t.actor;
  let actions, actor_tape = Mlp.forward_train t.actor states in
  (* Deterministic policy gradient: maximize Q1(s, pi(s)), i.e. descend
     -Q1. The critic is only a conduit for gradients here; its own
     gradient accumulators are zeroed again before its next fit. *)
  Mlp.zero_grad t.critic1;
  let critic_inputs =
    Array.mapi (fun i s -> Array.append s actions.(i)) states
  in
  let _, critic_tape = Mlp.forward_train t.critic1 critic_inputs in
  let dout = Array.make n [| -1. /. float_of_int n |] in
  let dinputs = Mlp.backward t.critic1 critic_tape dout in
  let daction =
    Array.map
      (fun din -> Array.sub din cfg.state_dim cfg.action_dim)
      dinputs
  in
  ignore (Mlp.backward t.actor actor_tape daction);
  let params = Mlp.params t.actor in
  Optimizer.clip_gradients ~norm:10. params;
  Optimizer.step t.opt_actor params

let soft_updates t =
  let tau = t.cfg.tau in
  Mlp.soft_update ~tau ~src:t.actor ~dst:t.actor_target;
  Mlp.soft_update ~tau ~src:t.critic1 ~dst:t.critic1_target;
  Mlp.soft_update ~tau ~src:t.critic2 ~dst:t.critic2_target

let update t =
  if Replay_buffer.length t.buffer >= max t.cfg.warmup t.cfg.batch_size
  then begin
    t.update_calls <- t.update_calls + 1;
    let batch =
      Replay_buffer.sample t.buffer t.rng ~batch_size:t.cfg.batch_size
    in
    critic_update t batch;
    if t.update_calls mod t.cfg.policy_delay = 0 then begin
      actor_update t batch;
      soft_updates t
    end
  end

let save t ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Checkpoint.save t.actor (Filename.concat dir "actor.ckpt");
  Checkpoint.save t.critic1 (Filename.concat dir "critic1.ckpt");
  Checkpoint.save t.critic2 (Filename.concat dir "critic2.ckpt")

let load_actor t path =
  let net = Checkpoint.load path in
  if Mlp.in_dim net <> t.cfg.state_dim || Mlp.out_dim net <> t.cfg.action_dim
  then invalid_arg "Td3.load_actor: shape mismatch";
  t.actor <- net;
  t.actor_target <- Mlp.copy net
