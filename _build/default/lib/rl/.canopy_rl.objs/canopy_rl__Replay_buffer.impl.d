lib/rl/replay_buffer.ml: Array Canopy_util
