lib/rl/td3.ml: Array Canopy_nn Canopy_util Checkpoint Filename Float List Mlp Optimizer Replay_buffer Sys
