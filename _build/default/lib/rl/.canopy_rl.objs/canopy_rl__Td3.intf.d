lib/rl/td3.mli: Canopy_nn Canopy_util Mlp Replay_buffer
