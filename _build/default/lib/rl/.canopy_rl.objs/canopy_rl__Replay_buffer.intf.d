lib/rl/replay_buffer.mli: Canopy_util
