(** Uniform-sampling experience replay for off-policy RL. *)

type transition = {
  state : float array;
  action : float array;
  reward : float;
  next_state : float array;
  terminal : bool;
}

type t

val create : capacity:int -> t
(** Requires [capacity > 0]. Once full, new transitions overwrite the
    oldest ones. *)

val capacity : t -> int
val length : t -> int
val add : t -> transition -> unit

val sample : t -> Canopy_util.Prng.t -> batch_size:int -> transition array
(** Uniform sample with replacement. Raises [Invalid_argument] when the
    buffer is empty. *)

val clear : t -> unit
