(* Rate clamps in packets per ms (1 pkt/ms = 12 Mbps at MTU 1500). *)
let min_rate = 0.02
let max_rate = 200.
let probe_epsilon = 0.05

type phase =
  | Starting  (** multiplicative search while utility keeps improving *)
  | Probe_up  (** monitor interval at rate·(1+ε) *)
  | Probe_down  (** monitor interval at rate·(1−ε) *)

type t = {
  utility_exponent : float;
  latency_weight : float;
  loss_weight : float;
  mutable rate : float; (* pkts per ms, the decision variable *)
  mutable phase : phase;
  mutable srtt_ms : float;
  mutable min_rtt_ms : float;
  (* current monitor interval *)
  mutable mi_start_ms : int;
  mutable mi_acks : int;
  mutable mi_losses : int;
  mutable mi_first_rtt : float;
  mutable mi_last_rtt : float;
  (* learning state *)
  mutable last_utility : float;
  mutable probe_up_utility : float;
  mutable step_size : float; (* confidence-amplified gradient step *)
  mutable last_gradient_sign : float;
}

let create ?(utility_exponent = 0.9) ?(latency_weight = 900.)
    ?(loss_weight = 11.35) ?(initial_rate_pkts_per_ms = 1.) () =
  if utility_exponent <= 0. || utility_exponent >= 1. then
    invalid_arg "Vivace.create: utility exponent";
  {
    utility_exponent;
    latency_weight;
    loss_weight;
    rate = Canopy_util.Mathx.clamp ~lo:min_rate ~hi:max_rate
        initial_rate_pkts_per_ms;
    phase = Starting;
    srtt_ms = 0.;
    min_rtt_ms = Float.infinity;
    mi_start_ms = 0;
    mi_acks = 0;
    mi_losses = 0;
    mi_first_rtt = 0.;
    mi_last_rtt = 0.;
    last_utility = 0.;
    probe_up_utility = 0.;
    step_size = 0.05;
    last_gradient_sign = 0.;
  }

let rate_pkts_per_ms t = t.rate
let utility t = t.last_utility

let effective_rate t =
  match t.phase with
  | Starting -> t.rate
  | Probe_up -> t.rate *. (1. +. probe_epsilon)
  | Probe_down -> t.rate *. (1. -. probe_epsilon)

let cwnd t =
  (* Convert the target rate to a window using the propagation RTT, not
     the smoothed one: sizing by an inflated sRTT would create a positive
     feedback loop (queueing grows the window grows the queue). *)
  let rtt = if t.min_rtt_ms = Float.infinity then 40. else t.min_rtt_ms in
  Float.max 2. (effective_rate t *. rtt)

let rtt_estimate t = Float.max 10. t.srtt_ms

(* A rate change only manifests in the ACK stream one RTT later, so each
   monitor interval starts with a one-RTT warmup whose ACKs are ignored
   (PCC's MI alignment), followed by one RTT of measurement. *)
let warmup_ms t = int_of_float (rtt_estimate t)
let mi_duration_ms t = 2 * int_of_float (rtt_estimate t)

let in_measurement t ~now_ms = now_ms - t.mi_start_ms >= warmup_ms t

(* Utility of the just-finished monitor interval (Vivace's U). *)
let interval_utility t ~duration_ms =
  let measured_ms = max 1 (duration_ms - warmup_ms t) in
  let x = float_of_int t.mi_acks /. float_of_int measured_ms in
  if x <= 0. then 0.
  else begin
    let latency_gradient =
      (t.mi_last_rtt -. t.mi_first_rtt) /. float_of_int (max 1 duration_ms)
    in
    let total = t.mi_acks + t.mi_losses in
    let loss = float_of_int t.mi_losses /. float_of_int (max 1 total) in
    (x ** t.utility_exponent)
    -. (t.latency_weight *. x *. Float.max 0. latency_gradient)
    -. (t.loss_weight *. x *. loss)
  end

let set_rate t r = t.rate <- Canopy_util.Mathx.clamp ~lo:min_rate ~hi:max_rate r

let close_interval t ~now_ms =
  let duration_ms = now_ms - t.mi_start_ms in
  let u = interval_utility t ~duration_ms in
  (match t.phase with
  | Starting ->
      (* Double while the utility keeps improving; otherwise settle and
         start gradient probing. *)
      if u >= t.last_utility && t.mi_losses = 0 then set_rate t (t.rate *. 2.)
      else begin
        set_rate t (t.rate /. 2.);
        t.phase <- Probe_up
      end;
      t.last_utility <- u
  | Probe_up ->
      t.probe_up_utility <- u;
      t.phase <- Probe_down
  | Probe_down ->
      (* Empirical utility gradient over the probe pair. *)
      let gradient =
        (t.probe_up_utility -. u) /. (2. *. probe_epsilon *. t.rate)
      in
      let sign = Canopy_util.Mathx.sign gradient in
      (* Confidence amplification: consecutive same-direction moves take
         larger steps; a direction flip resets the step size. *)
      if sign <> 0. && sign = t.last_gradient_sign then
        t.step_size <- Float.min 0.5 (t.step_size *. 1.5)
      else t.step_size <- 0.05;
      t.last_gradient_sign <- sign;
      set_rate t (t.rate +. (sign *. t.step_size *. t.rate));
      t.last_utility <- u;
      t.phase <- Probe_up);
  t.mi_start_ms <- now_ms;
  t.mi_acks <- 0;
  t.mi_losses <- 0;
  t.mi_first_rtt <- 0.;
  t.mi_last_rtt <- 0.

let maybe_close t ~now_ms =
  if now_ms - t.mi_start_ms >= mi_duration_ms t then close_interval t ~now_ms

let on_ack t (ack : Canopy_netsim.Env.ack) =
  let rtt = float_of_int ack.rtt_ms in
  if rtt < t.min_rtt_ms then t.min_rtt_ms <- rtt;
  t.srtt_ms <-
    (if t.srtt_ms = 0. then rtt else (0.875 *. t.srtt_ms) +. (0.125 *. rtt));
  if in_measurement t ~now_ms:ack.now_ms then begin
    if t.mi_acks = 0 then t.mi_first_rtt <- rtt;
    t.mi_last_rtt <- rtt;
    t.mi_acks <- t.mi_acks + 1
  end;
  maybe_close t ~now_ms:ack.now_ms

let on_loss t ~now_ms =
  if in_measurement t ~now_ms then t.mi_losses <- t.mi_losses + 1;
  maybe_close t ~now_ms

let to_controller t =
  {
    Controller.name = "vivace";
    on_ack = on_ack t;
    on_loss = (fun ~now_ms -> on_loss t ~now_ms);
    cwnd = (fun () -> cwnd t);
  }
