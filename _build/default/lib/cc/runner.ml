module Env = Canopy_netsim.Env
module Stats = Canopy_util.Stats

type metrics = {
  scheme : string;
  trace : string;
  utilization : float;
  avg_throughput_mbps : float;
  avg_qdelay_ms : float;
  p95_qdelay_ms : float;
  avg_rtt_ms : float;
  loss_rate : float;
  delivered_pkts : int;
  dropped_pkts : int;
}

let pp_metrics ppf m =
  Format.fprintf ppf
    "%-10s %-22s util=%5.1f%% thr=%6.2fMbps qdelay(avg/p95)=%6.1f/%6.1fms \
     loss=%5.2f%%"
    m.scheme m.trace (100. *. m.utilization) m.avg_throughput_mbps
    m.avg_qdelay_ms m.p95_qdelay_ms (100. *. m.loss_rate)

type series = {
  bin_ms : int;
  throughput_mbps : float array;
  capacity_mbps : float array;
  cwnd : float array;
  avg_qdelay_ms_bins : float array;
}

let buffer_of_bdp ~bdp_multiplier ~trace ~min_rtt_ms =
  let bdp =
    Env.bdp_pkts
      ~mbps:(Canopy_trace.Trace.avg_mbps trace)
      ~min_rtt_ms ~mtu_bytes:Env.default_mtu
  in
  max 1 (int_of_float (Float.round (bdp_multiplier *. float_of_int bdp)))

let run ?series_bin_ms ?(impairments = Env.no_impairments) ~trace ~min_rtt_ms
    ~buffer_pkts ~duration_ms make_controller =
  if duration_ms <= 0 then invalid_arg "Runner.run: duration";
  let controller = make_controller () in
  let cfg =
    {
      Env.trace;
      min_rtt_ms;
      buffer_pkts;
      mtu_bytes = Env.default_mtu;
      initial_cwnd = controller.Controller.cwnd ();
      impairments;
    }
  in
  let env = Env.create cfg in
  (* Per-bin series accumulators. *)
  let bin_ms = Option.value ~default:0 series_bin_ms in
  let nbins = if bin_ms > 0 then (duration_ms + bin_ms - 1) / bin_ms else 0 in
  let thr_bins = Array.make (max 1 nbins) 0. in
  let cap_bins = Array.make (max 1 nbins) 0. in
  let cwnd_bins = Array.make (max 1 nbins) 0. in
  let qd_sum = Array.make (max 1 nbins) 0. in
  let qd_cnt = Array.make (max 1 nbins) 0 in
  let bin_of ms = min (max 0 ((ms - 1) / bin_ms)) (nbins - 1) in
  let series_handlers =
    if bin_ms = 0 then Env.null_handlers
    else
      {
        Env.on_ack =
          (fun ack ->
            let b = bin_of ack.now_ms in
            thr_bins.(b) <- thr_bins.(b) +. 1.;
            qd_sum.(b) <-
              qd_sum.(b) +. float_of_int (max 0 (ack.rtt_ms - min_rtt_ms));
            qd_cnt.(b) <- qd_cnt.(b) + 1);
        on_loss = (fun ~now_ms:_ -> ());
      }
  in
  let handlers = Env.chain (Controller.handlers controller) series_handlers in
  for ms = 1 to duration_ms do
    Env.tick env handlers;
    Env.set_cwnd env (controller.Controller.cwnd ());
    if bin_ms > 0 then begin
      let b = bin_of ms in
      cwnd_bins.(b) <- Env.cwnd env;
      cap_bins.(b) <-
        cap_bins.(b) +. Canopy_trace.Trace.mbps_at trace (ms - 1)
    end
  done;
  let st = Env.stats env in
  let qdelays = Env.qdelay_array_ms env in
  let rtts = Canopy_util.Fbuf.to_array st.rtt_samples in
  let metrics =
    {
      scheme = controller.Controller.name;
      trace = Canopy_trace.Trace.name trace;
      utilization = Env.utilization env;
      avg_throughput_mbps =
        float_of_int st.delivered
        *. float_of_int Env.default_mtu *. 8. /. 1e6
        /. (float_of_int duration_ms /. 1000.);
      avg_qdelay_ms = Stats.mean qdelays;
      p95_qdelay_ms =
        (if Array.length qdelays = 0 then 0. else Stats.percentile qdelays 95.);
      avg_rtt_ms = Stats.mean rtts;
      loss_rate = Env.loss_rate env;
      delivered_pkts = st.delivered;
      dropped_pkts = st.dropped;
    }
  in
  let series =
    if bin_ms = 0 then None
    else begin
      let pkts_to_mbps pkts =
        pkts *. float_of_int Env.default_mtu *. 8. /. 1e6
        /. (float_of_int bin_ms /. 1000.)
      in
      Some
        {
          bin_ms;
          throughput_mbps = Array.map pkts_to_mbps thr_bins;
          capacity_mbps =
            Array.map (fun sum -> sum /. float_of_int bin_ms) cap_bins;
          cwnd = cwnd_bins;
          avg_qdelay_ms_bins =
            Array.init nbins (fun b ->
                if qd_cnt.(b) = 0 then 0.
                else qd_sum.(b) /. float_of_int qd_cnt.(b));
        }
    end
  in
  (metrics, series)
