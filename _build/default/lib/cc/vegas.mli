(** TCP Vegas (Brakmo & Peterson) — delay-based congestion avoidance.

    Once per RTT, Vegas compares the expected rate [cwnd / baseRTT] with
    the actual rate [cwnd / RTT] and keeps the difference (in packets)
    between [alpha] and [beta] by adjusting the window by one packet.
    Used as the delay-sensitive baseline: the paper positions the learned
    performance property as achieving "the best of Cubic and Vegas". *)

type t

val create : ?alpha:float -> ?beta:float -> ?initial_cwnd:float -> unit -> t
(** Defaults: [alpha = 2.], [beta = 4.] packets. *)

val on_ack : t -> Canopy_netsim.Env.ack -> unit
val on_loss : t -> now_ms:int -> unit
val cwnd : t -> float
val base_rtt_ms : t -> float
(** Current minimum-RTT estimate; [infinity] before the first ACK. *)

val to_controller : t -> Controller.t
