(** TCP Reno (NewReno-style AIMD): slow start, additive increase of one
    packet per RTT, multiplicative decrease by half on loss. Included as
    the simplest well-understood baseline and as a reference point for
    tests of the simulator's ACK-clocking behaviour. *)

type t

val create : ?initial_cwnd:float -> unit -> t
val on_ack : t -> Canopy_netsim.Env.ack -> unit
val on_loss : t -> now_ms:int -> unit
val cwnd : t -> float
val in_slow_start : t -> bool
val to_controller : t -> Controller.t
