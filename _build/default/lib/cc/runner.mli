(** Drive a congestion controller over a trace and collect the metrics
    the paper's evaluation reports (Section 6.1): average utilization,
    average and p95 queueing delay, and loss rate — plus optional
    per-bin time series for the motivating sending-rate figures. *)

type metrics = {
  scheme : string;
  trace : string;
  utilization : float;  (** delivered / offered capacity, 0..1 *)
  avg_throughput_mbps : float;
  avg_qdelay_ms : float;
  p95_qdelay_ms : float;
  avg_rtt_ms : float;
  loss_rate : float;
  delivered_pkts : int;
  dropped_pkts : int;
}

val pp_metrics : Format.formatter -> metrics -> unit

type series = {
  bin_ms : int;
  throughput_mbps : float array;  (** delivered rate per bin *)
  capacity_mbps : float array;  (** offered capacity per bin *)
  cwnd : float array;  (** effective window at each bin end *)
  avg_qdelay_ms_bins : float array;  (** mean queueing delay per bin *)
}
(** Time-binned series of one run. *)

val run :
  ?series_bin_ms:int ->
  ?impairments:Canopy_netsim.Env.impairments ->
  trace:Canopy_trace.Trace.t ->
  min_rtt_ms:int ->
  buffer_pkts:int ->
  duration_ms:int ->
  (unit -> Controller.t) ->
  metrics * series option
(** [run ~trace ... make_controller] simulates a fresh controller on a
    fresh link. The controller's window suggestion is applied to the link
    after every millisecond tick. [series_bin_ms] enables time-series
    collection at the given resolution. *)

val buffer_of_bdp :
  bdp_multiplier:float ->
  trace:Canopy_trace.Trace.t ->
  min_rtt_ms:int ->
  int
(** Buffer sizing used throughout the evaluation: a multiple of the
    bandwidth-delay product at the trace's average rate (1 BDP = shallow,
    2 BDP = training default, 5 BDP = deep). At least one packet. *)
