(** PCC Vivace (Dong et al., NSDI'18) — online-learning congestion
    control, cited by the paper as a representative learned controller.

    Vivace is rate-based: it probes a small rate perturbation in
    alternating directions, scores each monitor interval with the utility
    [U(x) = x^t − b·x·(d(RTT)/dt) − c·x·L] (throughput reward, latency-
    gradient penalty, loss penalty), and moves the rate along the empirical
    utility gradient with a confidence-amplified step. This window-clocked
    adaptation keeps the published utility and gradient-ascent structure
    while driving the simulator through a congestion window
    ([cwnd = rate · RTT]). *)

type t

val create :
  ?utility_exponent:float ->
  ?latency_weight:float ->
  ?loss_weight:float ->
  ?initial_rate_pkts_per_ms:float ->
  unit ->
  t
(** Defaults follow the paper: [t = 0.9], [b = 900], [c = 11.35]. *)

val on_ack : t -> Canopy_netsim.Env.ack -> unit
val on_loss : t -> now_ms:int -> unit
val cwnd : t -> float

val rate_pkts_per_ms : t -> float
(** Current sending-rate estimate. *)

val utility : t -> float
(** Utility of the last completed monitor interval (0 before the first). *)

val to_controller : t -> Controller.t
