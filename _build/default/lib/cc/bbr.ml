(* Windowed extremum filter over (timestamp, value) samples, implemented
   as a monotonic list: good enough for the handful of live samples BBR
   keeps. [better a b] returns true when [a] should shadow [b]. *)
module Wfilter = struct
  type t = {
    mutable items : (int * float) list; (* oldest first, monotonic *)
    better : float -> float -> bool;
  }

  let create better = { items = []; better }

  let push t ~now_ms ~window_ms value =
    let fresh (ts, _) = now_ms - ts <= window_ms in
    let rec keep = function
      | [] -> []
      | (_, v) :: _ as rest when t.better value v -> ignore rest; []
      | x :: rest -> x :: keep rest
    in
    (* Drop stale entries from the front, dominated entries from the back. *)
    let live = List.filter fresh t.items in
    t.items <- List.rev (( now_ms, value) :: keep (List.rev live))

  let current t =
    match t.items with [] -> None | (_, v) :: _ -> Some v
end

type mode = Startup | Drain | Probe_bw | Probe_rtt

let startup_gain = 2.885
let drain_gain = 0.8
let probe_gains = [| 1.25; 0.75; 1.; 1.; 1.; 1.; 1.; 1. |]
let bw_window_factor = 10 (* bandwidth window = 10 rt_prop *)
let rtprop_window_ms = 10_000
let probe_rtt_interval_ms = 10_000
let probe_rtt_duration_ms = 200
let min_cwnd = 4.

type t = {
  mutable cwnd : float;
  mutable mode : mode;
  bw_filter : Wfilter.t;
  mutable rt_prop_ms : float;
  mutable rt_prop_stamp_ms : int;
  (* delivery-rate sampling epoch *)
  mutable epoch_start_ms : int;
  mutable epoch_delivered : int;
  (* startup full-pipe detection *)
  mutable full_bw : float;
  mutable full_bw_count : int;
  (* probe-bw phase *)
  mutable phase : int;
  mutable phase_start_ms : int;
  (* probe-rtt bookkeeping *)
  mutable probe_rtt_done_ms : int;
  mutable last_probe_rtt_ms : int;
}

let create ?(initial_cwnd = 10.) () =
  {
    cwnd = initial_cwnd;
    mode = Startup;
    bw_filter = Wfilter.create (fun a b -> a >= b);
    rt_prop_ms = Float.infinity;
    rt_prop_stamp_ms = 0;
    epoch_start_ms = 0;
    epoch_delivered = 0;
    full_bw = 0.;
    full_bw_count = 0;
    phase = 0;
    phase_start_ms = 0;
    probe_rtt_done_ms = 0;
    last_probe_rtt_ms = 0;
  }

let cwnd t = t.cwnd
let btl_bw_pkts_per_ms t = Option.value ~default:0. (Wfilter.current t.bw_filter)
let rt_prop_ms t = t.rt_prop_ms

let mode t =
  match t.mode with
  | Startup -> "startup"
  | Drain -> "drain"
  | Probe_bw -> "probe_bw"
  | Probe_rtt -> "probe_rtt"

let bdp t =
  let bw = btl_bw_pkts_per_ms t in
  if bw <= 0. || t.rt_prop_ms = Float.infinity then 0.
  else bw *. t.rt_prop_ms

let update_cwnd t =
  let bdp = bdp t in
  let target =
    match t.mode with
    | Startup -> if bdp > 0. then startup_gain *. bdp else t.cwnd +. 1.
    | Drain -> drain_gain *. bdp
    | Probe_bw -> probe_gains.(t.phase) *. bdp
    | Probe_rtt -> min_cwnd
  in
  t.cwnd <- Float.max min_cwnd target

let advance_state t ~now_ms =
  (match t.mode with
  | Startup ->
      let bw = btl_bw_pkts_per_ms t in
      if bw > t.full_bw *. 1.25 then begin
        t.full_bw <- bw;
        t.full_bw_count <- 0
      end
      else begin
        t.full_bw_count <- t.full_bw_count + 1;
        if t.full_bw_count >= 3 then begin
          t.mode <- Drain;
          t.phase_start_ms <- now_ms
        end
      end
  | Drain ->
      (* Stay in drain for two propagation RTTs, long enough for the
         startup queue to empty at 0.8 gain. *)
      let rtprop =
        if t.rt_prop_ms = Float.infinity then 10. else t.rt_prop_ms
      in
      if float_of_int (now_ms - t.phase_start_ms) >= 2. *. rtprop then begin
        t.mode <- Probe_bw;
        t.phase <- 0;
        t.phase_start_ms <- now_ms
      end
  | Probe_bw ->
      let rtprop =
        if t.rt_prop_ms = Float.infinity then 10. else t.rt_prop_ms
      in
      if float_of_int (now_ms - t.phase_start_ms) >= rtprop then begin
        t.phase <- (t.phase + 1) mod Array.length probe_gains;
        t.phase_start_ms <- now_ms
      end;
      if now_ms - t.last_probe_rtt_ms >= probe_rtt_interval_ms
         && now_ms - t.rt_prop_stamp_ms >= rtprop_window_ms / 2
      then begin
        t.mode <- Probe_rtt;
        t.probe_rtt_done_ms <- now_ms + probe_rtt_duration_ms
      end
  | Probe_rtt ->
      if now_ms >= t.probe_rtt_done_ms then begin
        t.last_probe_rtt_ms <- now_ms;
        t.mode <- Probe_bw;
        t.phase <- 0;
        t.phase_start_ms <- now_ms
      end);
  update_cwnd t

let on_ack t (ack : Canopy_netsim.Env.ack) =
  let rtt = float_of_int ack.rtt_ms in
  if rtt <= t.rt_prop_ms then begin
    t.rt_prop_ms <- rtt;
    t.rt_prop_stamp_ms <- ack.now_ms
  end;
  (* Delivery-rate sample once per (estimated) RTT. *)
  let rtprop = if t.rt_prop_ms = Float.infinity then 10. else t.rt_prop_ms in
  let epoch_ms = ack.now_ms - t.epoch_start_ms in
  if float_of_int epoch_ms >= Float.max 1. rtprop then begin
    let rate =
      float_of_int (ack.delivered - t.epoch_delivered) /. float_of_int epoch_ms
    in
    Wfilter.push t.bw_filter ~now_ms:ack.now_ms
      ~window_ms:(bw_window_factor * int_of_float (Float.max 10. rtprop))
      rate;
    t.epoch_start_ms <- ack.now_ms;
    t.epoch_delivered <- ack.delivered;
    advance_state t ~now_ms:ack.now_ms
  end
  else if t.mode = Startup && bdp t = 0. then
    (* Bootstrap: no bandwidth sample yet, grow like slow start. *)
    t.cwnd <- t.cwnd +. 1.

let on_loss t ~now_ms =
  (* BBR is not loss-driven; it only backs off slightly on sustained
     loss to bound queue build-up in small buffers. *)
  ignore now_ms;
  t.cwnd <- Float.max min_cwnd (t.cwnd *. 0.95)

let to_controller t =
  {
    Controller.name = "bbr";
    on_ack = on_ack t;
    on_loss = (fun ~now_ms -> on_loss t ~now_ms);
    cwnd = (fun () -> cwnd t);
  }
