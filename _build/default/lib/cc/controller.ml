type t = {
  name : string;
  on_ack : Canopy_netsim.Env.ack -> unit;
  on_loss : now_ms:int -> unit;
  cwnd : unit -> float;
}

let handlers t =
  { Canopy_netsim.Env.on_ack = t.on_ack; on_loss = t.on_loss }
