(** Model-based congestion control in the style of BBR (Cardwell et al.).

    Maintains windowed estimates of the bottleneck bandwidth (max filter
    over recent delivery-rate samples) and of the propagation RTT (min
    filter), and sets the congestion window to a gain times the estimated
    bandwidth-delay product while cycling through probing gains. The state
    machine follows the published design — Startup, Drain, ProbeBW with an
    eight-phase gain cycle, and periodic ProbeRTT — but is window-based
    rather than pacing-based, which is the standard simplification for
    window-clocked simulators and preserves the delay-vs-throughput
    trade-off the evaluation plots. *)

type t

val create : ?initial_cwnd:float -> unit -> t
val on_ack : t -> Canopy_netsim.Env.ack -> unit
val on_loss : t -> now_ms:int -> unit
val cwnd : t -> float

val btl_bw_pkts_per_ms : t -> float
(** Current bottleneck-bandwidth estimate; 0 before any sample. *)

val rt_prop_ms : t -> float
(** Current propagation-RTT estimate; [infinity] before the first ACK. *)

val mode : t -> string
(** ["startup"], ["drain"], ["probe_bw"] or ["probe_rtt"] — exposed for
    tests and debugging output. *)

val to_controller : t -> Controller.t
