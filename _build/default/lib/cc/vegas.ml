type t = {
  alpha : float;
  beta : float;
  mutable cwnd : float;
  mutable base_rtt_ms : float;
  mutable epoch_start_ms : int;
  mutable epoch_rtt_sum : float;
  mutable epoch_acks : int;
  mutable in_slow_start : bool;
  mutable last_loss_ms : int;
}

let create ?(alpha = 2.) ?(beta = 4.) ?(initial_cwnd = 10.) () =
  if alpha > beta then invalid_arg "Vegas.create: alpha > beta";
  {
    alpha;
    beta;
    cwnd = initial_cwnd;
    base_rtt_ms = Float.infinity;
    epoch_start_ms = 0;
    epoch_rtt_sum = 0.;
    epoch_acks = 0;
    in_slow_start = true;
    last_loss_ms = -1_000_000;
  }

let cwnd t = t.cwnd
let base_rtt_ms t = t.base_rtt_ms

let on_ack t (ack : Canopy_netsim.Env.ack) =
  let rtt = float_of_int ack.rtt_ms in
  if rtt < t.base_rtt_ms then t.base_rtt_ms <- rtt;
  t.epoch_rtt_sum <- t.epoch_rtt_sum +. rtt;
  t.epoch_acks <- t.epoch_acks + 1;
  (* Evaluate the expected-vs-actual rate difference once per RTT. *)
  if float_of_int (ack.now_ms - t.epoch_start_ms) >= t.base_rtt_ms
     && t.epoch_acks > 0
  then begin
    let avg_rtt = t.epoch_rtt_sum /. float_of_int t.epoch_acks in
    let diff = t.cwnd *. (1. -. (t.base_rtt_ms /. avg_rtt)) in
    if t.in_slow_start then begin
      if diff > t.alpha then begin
        t.in_slow_start <- false;
        t.cwnd <- Float.max 2. (t.cwnd -. 1.)
      end
      else t.cwnd <- t.cwnd +. 1.
    end
    else if diff < t.alpha then t.cwnd <- t.cwnd +. 1.
    else if diff > t.beta then t.cwnd <- Float.max 2. (t.cwnd -. 1.);
    t.epoch_start_ms <- ack.now_ms;
    t.epoch_rtt_sum <- 0.;
    t.epoch_acks <- 0
  end
  else if t.in_slow_start then
    (* Grow every other ACK during slow start, as in the original. *)
    t.cwnd <- t.cwnd +. 0.5

let on_loss t ~now_ms =
  if now_ms - t.last_loss_ms >= int_of_float (Float.max 5. t.base_rtt_ms)
  then begin
    t.last_loss_ms <- now_ms;
    t.in_slow_start <- false;
    t.cwnd <- Float.max 2. (t.cwnd *. 0.75)
  end

let to_controller t =
  {
    Controller.name = "vegas";
    on_ack = on_ack t;
    on_loss = (fun ~now_ms -> on_loss t ~now_ms);
    cwnd = (fun () -> cwnd t);
  }
