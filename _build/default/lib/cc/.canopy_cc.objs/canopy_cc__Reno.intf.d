lib/cc/reno.mli: Canopy_netsim Controller
