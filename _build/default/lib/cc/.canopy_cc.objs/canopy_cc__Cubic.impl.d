lib/cc/cubic.ml: Canopy_netsim Canopy_util Controller Float
