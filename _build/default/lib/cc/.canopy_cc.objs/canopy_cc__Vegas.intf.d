lib/cc/vegas.mli: Canopy_netsim Controller
