lib/cc/vivace.mli: Canopy_netsim Controller
