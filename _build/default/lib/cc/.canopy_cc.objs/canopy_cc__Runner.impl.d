lib/cc/runner.ml: Array Canopy_netsim Canopy_trace Canopy_util Controller Float Format Option
