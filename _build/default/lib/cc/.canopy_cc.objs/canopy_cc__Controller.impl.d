lib/cc/controller.ml: Canopy_netsim
