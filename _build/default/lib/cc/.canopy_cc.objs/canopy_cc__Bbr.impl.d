lib/cc/bbr.ml: Array Canopy_netsim Controller Float List Option
