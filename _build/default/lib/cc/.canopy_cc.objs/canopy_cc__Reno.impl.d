lib/cc/reno.ml: Canopy_netsim Controller Float
