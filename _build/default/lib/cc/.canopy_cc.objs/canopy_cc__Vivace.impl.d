lib/cc/vivace.ml: Canopy_netsim Canopy_util Controller Float
