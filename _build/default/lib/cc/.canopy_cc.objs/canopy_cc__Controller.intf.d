lib/cc/controller.mli: Canopy_netsim
