lib/cc/cubic.mli: Canopy_netsim Controller
