lib/cc/bbr.mli: Canopy_netsim Controller
