lib/cc/runner.mli: Canopy_netsim Canopy_trace Controller Format
