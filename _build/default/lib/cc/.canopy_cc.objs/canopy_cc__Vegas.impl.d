lib/cc/vegas.ml: Canopy_netsim Controller Float
