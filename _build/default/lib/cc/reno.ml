type t = {
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable last_loss_ms : int;
  mutable srtt_ms : float;
}

let create ?(initial_cwnd = 10.) () =
  {
    cwnd = initial_cwnd;
    ssthresh = Float.infinity;
    last_loss_ms = -1_000_000;
    srtt_ms = 0.;
  }

let cwnd t = t.cwnd
let in_slow_start t = t.cwnd < t.ssthresh

let on_ack t (ack : Canopy_netsim.Env.ack) =
  let rtt = float_of_int ack.rtt_ms in
  t.srtt_ms <-
    (if t.srtt_ms = 0. then rtt else (0.875 *. t.srtt_ms) +. (0.125 *. rtt));
  if in_slow_start t then t.cwnd <- t.cwnd +. 1.
  else t.cwnd <- t.cwnd +. (1. /. t.cwnd)

let on_loss t ~now_ms =
  let guard_ms = int_of_float (Float.max 5. t.srtt_ms) in
  if now_ms - t.last_loss_ms >= guard_ms then begin
    t.last_loss_ms <- now_ms;
    t.cwnd <- Float.max 2. (t.cwnd /. 2.);
    t.ssthresh <- t.cwnd
  end

let to_controller t =
  {
    Controller.name = "reno";
    on_ack = on_ack t;
    on_loss = (fun ~now_ms -> on_loss t ~now_ms);
    cwnd = (fun () -> cwnd t);
  }
