(** Uniform congestion-controller interface.

    A controller reacts to per-packet ACK and loss feedback from
    {!Canopy_netsim.Env} and exposes a congestion window. Concrete
    algorithms (Cubic, Vegas, BBR, Reno) provide [to_controller] wrappers
    producing this record; the Orca/Canopy agents compose with it by
    overriding the window the simulator actually uses. *)

type t = {
  name : string;
  on_ack : Canopy_netsim.Env.ack -> unit;
  on_loss : now_ms:int -> unit;
  cwnd : unit -> float;  (** current window suggestion, in packets *)
}

val handlers : t -> Canopy_netsim.Env.handlers
(** The controller's feedback callbacks, for registration with the
    simulator. *)
