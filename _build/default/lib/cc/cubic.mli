(** TCP Cubic (Ha, Rhee, Xu) — window growth along a cubic curve anchored
    at the window size before the last loss.

    Cubic is both an evaluation baseline and the fine-grained "backbone"
    that the Orca/Canopy agents modulate (Section 3.1): the agent reads
    {!cwnd} as CWND_TCP in Eq. 1 while Cubic keeps reacting to every ACK
    and loss. *)

type t

val create : ?initial_cwnd:float -> unit -> t

val on_ack : t -> Canopy_netsim.Env.ack -> unit
val on_loss : t -> now_ms:int -> unit
val cwnd : t -> float
(** Current window suggestion in packets. *)

val in_slow_start : t -> bool
val w_max : t -> float
(** Window size at the last loss event (the cubic anchor point). *)

val force_cwnd : t -> float -> unit
(** Clamp the internal window, used when an external agent caps the
    effective window far below Cubic's suggestion for long periods and the
    suggestion must not diverge unboundedly. *)

val to_controller : t -> Controller.t
