(* Constants follow RFC 8312: C = 0.4, beta_cubic = 0.7. Time is in
   seconds inside the cubic polynomial. *)
let c_cubic = 0.4
let beta_cubic = 0.7
let max_cwnd = 100_000.

type t = {
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable w_max : float;
  mutable epoch_start_ms : int; (* -1 = not started *)
  mutable k : float; (* time (s) for the cubic to return to w_max *)
  mutable last_loss_ms : int;
  mutable srtt_ms : float;
}

let create ?(initial_cwnd = 10.) () =
  {
    cwnd = initial_cwnd;
    ssthresh = Float.infinity;
    w_max = initial_cwnd;
    epoch_start_ms = -1;
    k = 0.;
    last_loss_ms = -1_000_000;
    srtt_ms = 0.;
  }

let cwnd t = t.cwnd
let in_slow_start t = t.cwnd < t.ssthresh
let w_max t = t.w_max

let cube_root x = Float.pow x (1. /. 3.)

let on_ack t (ack : Canopy_netsim.Env.ack) =
  let rtt = float_of_int ack.rtt_ms in
  t.srtt_ms <-
    (if t.srtt_ms = 0. then rtt else (0.875 *. t.srtt_ms) +. (0.125 *. rtt));
  if in_slow_start t then t.cwnd <- Float.min max_cwnd (t.cwnd +. 1.)
  else begin
    if t.epoch_start_ms < 0 then begin
      t.epoch_start_ms <- ack.now_ms;
      t.k <- cube_root (t.w_max *. (1. -. beta_cubic) /. c_cubic)
    end;
    (* Target the cubic curve one RTT ahead, per the RFC. *)
    let elapsed_s =
      float_of_int (ack.now_ms - t.epoch_start_ms + ack.rtt_ms) /. 1000.
    in
    let w_cubic =
      (c_cubic *. ((elapsed_s -. t.k) ** 3.)) +. t.w_max
    in
    if w_cubic > t.cwnd then
      t.cwnd <- Float.min max_cwnd (t.cwnd +. ((w_cubic -. t.cwnd) /. t.cwnd))
    else
      (* In the TCP-friendly / plateau region grow at least like Reno. *)
      t.cwnd <- Float.min max_cwnd (t.cwnd +. (0.3 /. t.cwnd))
  end

let on_loss t ~now_ms =
  (* React at most once per (smoothed) RTT so a burst of drops from one
     overflow counts as a single congestion event. *)
  let guard_ms = int_of_float (Float.max 5. t.srtt_ms) in
  if now_ms - t.last_loss_ms >= guard_ms then begin
    t.last_loss_ms <- now_ms;
    t.w_max <- t.cwnd;
    t.cwnd <- Float.max 2. (t.cwnd *. beta_cubic);
    t.ssthresh <- t.cwnd;
    t.epoch_start_ms <- -1
  end

let force_cwnd t w =
  t.cwnd <- Canopy_util.Mathx.clamp ~lo:2. ~hi:max_cwnd w

let to_controller t =
  {
    Controller.name = "cubic";
    on_ack = on_ack t;
    on_loss = (fun ~now_ms -> on_loss t ~now_ms);
    cwnd = (fun () -> cwnd t);
  }
