type t = float array

let create n = Array.make n 0.
let init = Array.init
let of_list = Array.of_list
let copy = Array.copy
let dim = Array.length
let fill t x = Array.fill t 0 (Array.length t) x

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
                   (Array.length a) (Array.length b))

let add a b =
  check_dims "add" a b;
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_dims "sub" a b;
  Array.mapi (fun i x -> x -. b.(i)) a

let mul a b =
  check_dims "mul" a b;
  Array.mapi (fun i x -> x *. b.(i)) a

let scale alpha a = Array.map (fun x -> alpha *. x) a

let axpy ~alpha ~x ~y =
  check_dims "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let add_into ~dst a b =
  check_dims "add_into" a b;
  check_dims "add_into(dst)" dst a;
  for i = 0 to Array.length a - 1 do
    dst.(i) <- a.(i) +. b.(i)
  done

let sub_into ~dst a b =
  check_dims "sub_into" a b;
  check_dims "sub_into(dst)" dst a;
  for i = 0 to Array.length a - 1 do
    dst.(i) <- a.(i) -. b.(i)
  done

let dot a b =
  check_dims "dot" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0. a
let sum = Array.fold_left ( +. ) 0.

let mean a =
  let n = Array.length a in
  if n = 0 then 0. else sum a /. float_of_int n

let map = Array.map

let map_into ~dst f a =
  check_dims "map_into" dst a;
  for i = 0 to Array.length a - 1 do
    dst.(i) <- f a.(i)
  done

let map2 f a b =
  check_dims "map2" a b;
  Array.mapi (fun i x -> f x b.(i)) a

let concat ts = Array.concat ts
let slice t ~pos ~len = Array.sub t pos len
let max_elt a = Array.fold_left Float.max a.(0) a
let min_elt a = Array.fold_left Float.min a.(0) a

let argmax a =
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) > a.(!best) then best := i
  done;
  !best

let approx_equal ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       for i = 0 to Array.length a - 1 do
         if not (Canopy_util.Mathx.approx_equal ~eps a.(i) b.(i)) then
           ok := false
       done;
       !ok
     end

let pp ppf t =
  Format.fprintf ppf "[";
  Array.iteri
    (fun i x -> Format.fprintf ppf (if i = 0 then "%.4g" else "; %.4g") x)
    t;
  Format.fprintf ppf "]"
