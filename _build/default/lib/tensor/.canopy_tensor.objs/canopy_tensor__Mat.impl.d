lib/tensor/mat.ml: Array Canopy_util Float Format Printf Vec
