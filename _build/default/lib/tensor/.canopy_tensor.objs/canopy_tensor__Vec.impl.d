lib/tensor/vec.ml: Array Canopy_util Float Format Printf
