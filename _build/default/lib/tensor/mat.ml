type t = { rows : int; cols : int; data : float array (* row-major *) }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Mat.create: dims";
  { rows; cols; data = Array.make (rows * cols) 0. }

let init ~rows ~cols f =
  let m = create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Mat.of_arrays: empty";
  let cols = Array.length a.(0) in
  if cols = 0 then invalid_arg "Mat.of_arrays: empty row";
  Array.iter
    (fun r ->
      if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged")
    a;
  init ~rows ~cols (fun i j -> a.(i).(j))

let rows m = m.rows
let cols m = m.cols

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.get: index";
  m.data.((i * m.cols) + j)

let set m i j x =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.set: index";
  m.data.((i * m.cols) + j) <- x

let copy m = { m with data = Array.copy m.data }
let fill m x = Array.fill m.data 0 (Array.length m.data) x
let row m i = Array.sub m.data (i * m.cols) m.cols

let transpose m = init ~rows:m.cols ~cols:m.rows (fun i j -> get m j i)

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (Printf.sprintf "Mat.%s: shape mismatch" name)

let add a b =
  check_same "add" a b;
  { a with data = Array.mapi (fun i x -> x +. b.data.(i)) a.data }

let sub a b =
  check_same "sub" a b;
  { a with data = Array.mapi (fun i x -> x -. b.data.(i)) a.data }

let scale alpha m = { m with data = Array.map (fun x -> alpha *. x) m.data }
let map f m = { m with data = Array.map f m.data }
let abs m = map Float.abs m

let mat_vec m x =
  if m.cols <> Array.length x then invalid_arg "Mat.mat_vec: dims";
  let out = Array.make m.rows 0. in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let acc = ref 0. in
    for j = 0 to m.cols - 1 do
      acc := !acc +. (m.data.(base + j) *. x.(j))
    done;
    out.(i) <- !acc
  done;
  out

let mat_vec_into ~dst m x =
  if m.cols <> Array.length x then invalid_arg "Mat.mat_vec_into: dims";
  if m.rows <> Array.length dst then invalid_arg "Mat.mat_vec_into: dst";
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let acc = ref 0. in
    for j = 0 to m.cols - 1 do
      acc := !acc +. (m.data.(base + j) *. x.(j))
    done;
    dst.(i) <- !acc
  done

let mat_tvec m y =
  if m.rows <> Array.length y then invalid_arg "Mat.mat_tvec: dims";
  let out = Array.make m.cols 0. in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let yi = y.(i) in
    if yi <> 0. then
      for j = 0 to m.cols - 1 do
        out.(j) <- out.(j) +. (m.data.(base + j) *. yi)
      done
  done;
  out

let mat_mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mat_mul: dims";
  let out = create ~rows:a.rows ~cols:b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0. then begin
        let bbase = k * b.cols in
        let obase = i * b.cols in
        for j = 0 to b.cols - 1 do
          out.data.(obase + j) <- out.data.(obase + j) +. (aik *. b.data.(bbase + j))
        done
      end
    done
  done;
  out

let outer_acc m y x =
  if m.rows <> Array.length y || m.cols <> Array.length x then
    invalid_arg "Mat.outer_acc: dims";
  for i = 0 to m.rows - 1 do
    let yi = y.(i) in
    if yi <> 0. then begin
      let base = i * m.cols in
      for j = 0 to m.cols - 1 do
        m.data.(base + j) <- m.data.(base + j) +. (yi *. x.(j))
      done
    end
  done

let axpy ~alpha ~x ~y =
  check_same "axpy" x y;
  for i = 0 to Array.length x.data - 1 do
    y.data.(i) <- y.data.(i) +. (alpha *. x.data.(i))
  done

let frobenius m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. m.data)

let approx_equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && begin
       let ok = ref true in
       for i = 0 to Array.length a.data - 1 do
         if not (Canopy_util.Mathx.approx_equal ~eps a.data.(i) b.data.(i))
         then ok := false
       done;
       !ok
     end

let to_arrays m = Array.init m.rows (fun i -> row m i)

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "%a@," Vec.pp (row m i)
  done;
  Format.fprintf ppf "@]"

let raw m = m.data
