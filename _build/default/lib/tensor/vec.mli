(** Dense float vectors.

    Thin, allocation-conscious wrappers over [float array] used by the
    neural-network stack and the abstract interpreter. Unless stated
    otherwise, operations allocate a fresh result; the [_into] variants
    write into a caller-provided destination for hot loops. *)

type t = float array

val create : int -> t
(** Zero vector of the given length. *)

val init : int -> (int -> float) -> t
val of_list : float list -> t
val copy : t -> t
val dim : t -> int
val fill : t -> float -> unit

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Element-wise product. *)

val scale : float -> t -> t
val axpy : alpha:float -> x:t -> y:t -> unit
(** [axpy ~alpha ~x ~y] performs [y <- alpha*x + y] in place. *)

val add_into : dst:t -> t -> t -> unit
val sub_into : dst:t -> t -> t -> unit

val dot : t -> t -> float
val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
val sum : t -> float
val mean : t -> float
val map : (float -> float) -> t -> t
val map_into : dst:t -> (float -> float) -> t -> unit
val map2 : (float -> float -> float) -> t -> t -> t
val concat : t list -> t
val slice : t -> pos:int -> len:int -> t
val max_elt : t -> float
val min_elt : t -> float
val argmax : t -> int

val approx_equal : ?eps:float -> t -> t -> bool
(** Element-wise tolerance comparison; false when dimensions differ. *)

val pp : Format.formatter -> t -> unit
