(** Dense row-major float matrices.

    Backs the fully-connected layers of the neural controller and the
    linear abstract transformers (|M| propagation of box deviations,
    Section 3.2 of the paper). *)

type t

val create : rows:int -> cols:int -> t
(** Zero matrix. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t
val of_arrays : float array array -> t
(** Rows must be non-empty and rectangular. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val fill : t -> float -> unit
val row : t -> int -> Vec.t
(** Fresh copy of a row. *)

val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val map : (float -> float) -> t -> t
val abs : t -> t
(** Element-wise absolute value (used by box-domain propagation). *)

val mat_vec : t -> Vec.t -> Vec.t
(** [mat_vec m x] is [m * x]; requires [cols m = dim x]. *)

val mat_vec_into : dst:Vec.t -> t -> Vec.t -> unit

val mat_tvec : t -> Vec.t -> Vec.t
(** [mat_tvec m y] is [mᵀ * y]; requires [rows m = dim y]. *)

val mat_mul : t -> t -> t

val outer_acc : t -> Vec.t -> Vec.t -> unit
(** [outer_acc m y x] accumulates the outer product [y xᵀ] into [m]
    ([m.(i).(j) += y.(i) * x.(j)]); used for weight gradients. *)

val axpy : alpha:float -> x:t -> y:t -> unit
(** In-place [y <- alpha*x + y]. *)

val frobenius : t -> float
val approx_equal : ?eps:float -> t -> t -> bool
val to_arrays : t -> float array array

val raw : t -> float array
(** The underlying row-major storage, shared with the matrix. Mutating it
    mutates the matrix; exposed so optimizers can update parameters and
    their gradients uniformly as flat arrays. *)

val pp : Format.formatter -> t -> unit
