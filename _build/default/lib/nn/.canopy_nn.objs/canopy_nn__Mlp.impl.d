lib/nn/mlp.ml: Array Canopy_tensor Layer List Mat Printf Vec
