lib/nn/mlp.mli: Canopy_tensor Canopy_util Layer Vec
