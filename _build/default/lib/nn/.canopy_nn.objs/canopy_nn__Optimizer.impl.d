lib/nn/optimizer.ml: Array Hashtbl List
