lib/nn/checkpoint.ml: Array Buffer Canopy_tensor Fun Layer List Mat Mlp Printf String Vec
