lib/nn/layer.mli: Canopy_tensor Canopy_util Mat Vec
