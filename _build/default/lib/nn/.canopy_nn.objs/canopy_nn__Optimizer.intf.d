lib/nn/optimizer.mli:
