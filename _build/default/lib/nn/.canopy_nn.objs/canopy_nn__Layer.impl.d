lib/nn/layer.ml: Array Canopy_tensor Canopy_util Float Mat Vec
