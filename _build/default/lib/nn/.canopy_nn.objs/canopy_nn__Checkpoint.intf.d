lib/nn/checkpoint.mli: Mlp
