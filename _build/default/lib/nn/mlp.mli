(** Multi-layer perceptron container.

    Composes {!Layer.t} values into the feed-forward networks used for the
    actor (policy) and the twin critics. The paper's actor architecture
    (Section 5) is [FC → BN → LeakyReLU → FC → BN → LeakyReLU → FC] with a
    tanh head mapping to the action range [\[-1,1\]]; {!actor} builds exactly
    that shape. *)

open Canopy_tensor

type t

val create : in_dim:int -> Layer.t list -> t
(** Wrap a layer stack, recording the input dimension. Raises
    [Invalid_argument] if a dense layer's input size is inconsistent with
    the running dimension. *)

val actor :
  rng:Canopy_util.Prng.t -> in_dim:int -> hidden:int -> out_dim:int -> t
(** The paper's actor shape with a tanh output head. *)

val critic :
  rng:Canopy_util.Prng.t -> state_dim:int -> action_dim:int -> hidden:int -> t
(** Q-network over concatenated (state, action), scalar output, no head. *)

val in_dim : t -> int
val out_dim : t -> int
val layers : t -> Layer.t list

val forward : t -> Vec.t -> Vec.t
(** Single-sample inference ([Eval] mode; batch-norm uses running stats). *)

type tape
(** Activation record from a batched training-mode pass. *)

val forward_train : t -> Vec.t array -> Vec.t array * tape
val backward : t -> tape -> Vec.t array -> Vec.t array
(** Accumulates parameter gradients and returns input gradients. *)

val zero_grad : t -> unit
val params : t -> (float array * float array) list
val param_count : t -> int

val copy : t -> t
(** Deep copy, e.g. for target networks. *)

val soft_update : tau:float -> src:t -> dst:t -> unit
(** Polyak averaging of all parameters and batch-norm running statistics:
    [dst <- (1-tau)*dst + tau*src]. The networks must share a shape. *)
