(** Neural-network layers with explicit forward/backward passes.

    Implements exactly the pieces the paper's controller needs
    (Section 5): fully-connected layers, batch normalization, LeakyReLU,
    plus ReLU and a tanh output head for the bounded action space
    [a ∈ \[-1,1\]]. Layers are mutable records carrying both parameters and
    their gradient accumulators so that an optimizer can update them in
    place. *)

open Canopy_tensor

type dense = {
  w : Mat.t;  (** [out_dim × in_dim] weight matrix *)
  b : Vec.t;  (** bias, length [out_dim] *)
  dw : Mat.t;  (** gradient accumulator for [w] *)
  db : Vec.t;  (** gradient accumulator for [b] *)
}

type batch_norm = {
  gamma : Vec.t;
  beta : Vec.t;
  dgamma : Vec.t;
  dbeta : Vec.t;
  running_mean : Vec.t;
  running_var : Vec.t;
  momentum : float;  (** update rate for the running statistics *)
  eps : float;
}

type t =
  | Dense of dense
  | Batch_norm of batch_norm
  | Leaky_relu of float  (** negative-side slope *)
  | Relu
  | Tanh

type mode =
  | Train  (** batch statistics for BN, running stats updated *)
  | Eval  (** running statistics for BN (also used by the verifier) *)

type cache
(** Opaque per-layer activation cache produced by {!forward} and consumed
    by {!backward}. *)

val dense : rng:Canopy_util.Prng.t -> in_dim:int -> out_dim:int -> t
(** He-initialized fully-connected layer. *)

val batch_norm : ?momentum:float -> ?eps:float -> dim:int -> unit -> t
(** Batch normalization initialized to the identity transform
    (gamma = 1, beta = 0, running mean 0, running variance 1). *)

val leaky_relu : ?slope:float -> unit -> t
(** Default slope 0.01. *)

val relu : t
val tanh : t

val out_dim : in_dim:int -> t -> int
(** Output dimension of the layer given its input dimension. *)

val forward : mode -> t -> Vec.t array -> Vec.t array * cache
(** Batched forward pass. In [Train] mode, a batch-norm layer uses the
    batch statistics and folds them into its running statistics. *)

val forward1 : mode -> t -> Vec.t -> Vec.t
(** Single-sample forward without a cache (no running-stat update even in
    [Train] mode); convenient for action selection. *)

val backward : t -> cache -> Vec.t array -> Vec.t array
(** [backward layer cache dout] accumulates parameter gradients into the
    layer and returns the gradient with respect to the layer input. Must be
    called with the cache of the matching {!forward} invocation. *)

val zero_grad : t -> unit
val params : t -> (float array * float array) list
(** [(value, gradient)] pairs viewed as flat arrays, in a stable order. *)

val copy : t -> t
(** Deep copy (used to instantiate target networks). *)
