open Canopy_tensor

type dense = { w : Mat.t; b : Vec.t; dw : Mat.t; db : Vec.t }

type batch_norm = {
  gamma : Vec.t;
  beta : Vec.t;
  dgamma : Vec.t;
  dbeta : Vec.t;
  running_mean : Vec.t;
  running_var : Vec.t;
  momentum : float;
  eps : float;
}

type t =
  | Dense of dense
  | Batch_norm of batch_norm
  | Leaky_relu of float
  | Relu
  | Tanh

type mode = Train | Eval

type cache =
  | C_dense of Vec.t array
  | C_bn of {
      x : Vec.t array;
      xhat : Vec.t array;
      inv_std : Vec.t;
      mu : Vec.t;
      batch_stats : bool;
    }
  | C_leaky of float * Vec.t array
  | C_relu of Vec.t array
  | C_tanh of Vec.t array (* outputs *)

let dense ~rng ~in_dim ~out_dim =
  if in_dim <= 0 || out_dim <= 0 then invalid_arg "Layer.dense: dims";
  (* He initialization suits the (leaky-)ReLU activations used here. *)
  let scale = sqrt (2. /. float_of_int in_dim) in
  let w =
    Mat.init ~rows:out_dim ~cols:in_dim (fun _ _ ->
        Canopy_util.Prng.gaussian_scaled rng ~mu:0. ~sigma:scale)
  in
  Dense
    {
      w;
      b = Vec.create out_dim;
      dw = Mat.create ~rows:out_dim ~cols:in_dim;
      db = Vec.create out_dim;
    }

let batch_norm ?(momentum = 0.1) ?(eps = 1e-5) ~dim () =
  if dim <= 0 then invalid_arg "Layer.batch_norm: dim";
  let ones = Vec.init dim (fun _ -> 1.) in
  Batch_norm
    {
      gamma = Vec.copy ones;
      beta = Vec.create dim;
      dgamma = Vec.create dim;
      dbeta = Vec.create dim;
      running_mean = Vec.create dim;
      running_var = Vec.copy ones;
      momentum;
      eps;
    }

let leaky_relu ?(slope = 0.01) () = Leaky_relu slope
let relu = Relu
let tanh = Tanh

let out_dim ~in_dim = function
  | Dense d -> Mat.rows d.w
  | Batch_norm _ | Leaky_relu _ | Relu | Tanh -> in_dim

let leaky_fwd slope x = Array.map (fun v -> if v >= 0. then v else slope *. v) x

let bn_affine bn x =
  Array.mapi
    (fun i v ->
      let inv = 1. /. sqrt (bn.running_var.(i) +. bn.eps) in
      (bn.gamma.(i) *. (v -. bn.running_mean.(i)) *. inv) +. bn.beta.(i))
    x

let forward1 mode layer x =
  match layer with
  | Dense d ->
      let y = Mat.mat_vec d.w x in
      Vec.axpy ~alpha:1. ~x:d.b ~y;
      y
  | Batch_norm bn ->
      (* A single sample has no batch statistics: use the running ones in
         both modes (this is also what the verifier certifies against). *)
      ignore mode;
      bn_affine bn x
  | Leaky_relu slope -> leaky_fwd slope x
  | Relu -> Array.map (fun v -> Float.max 0. v) x
  | Tanh -> Array.map Float.tanh x

let forward mode layer batch =
  let n = Array.length batch in
  if n = 0 then invalid_arg "Layer.forward: empty batch";
  match layer with
  | Dense d ->
      let out =
        Array.map
          (fun x ->
            let y = Mat.mat_vec d.w x in
            Vec.axpy ~alpha:1. ~x:d.b ~y;
            y)
          batch
      in
      (out, C_dense batch)
  | Batch_norm bn ->
      let dim = Vec.dim bn.gamma in
      let use_batch_stats = mode = Train && n > 1 in
      if use_batch_stats then begin
        let mu = Vec.create dim and var = Vec.create dim in
        Array.iter (fun x -> Vec.axpy ~alpha:(1. /. float_of_int n) ~x ~y:mu)
          batch;
        Array.iter
          (fun x ->
            for i = 0 to dim - 1 do
              let d = x.(i) -. mu.(i) in
              var.(i) <- var.(i) +. (d *. d /. float_of_int n)
            done)
          batch;
        let inv_std = Vec.init dim (fun i -> 1. /. sqrt (var.(i) +. bn.eps)) in
        let xhat =
          Array.map
            (fun x -> Vec.init dim (fun i -> (x.(i) -. mu.(i)) *. inv_std.(i)))
            batch
        in
        let out =
          Array.map
            (fun xh ->
              Vec.init dim (fun i -> (bn.gamma.(i) *. xh.(i)) +. bn.beta.(i)))
            xhat
        in
        (* Fold the batch statistics into the running estimates. *)
        for i = 0 to dim - 1 do
          bn.running_mean.(i) <-
            ((1. -. bn.momentum) *. bn.running_mean.(i))
            +. (bn.momentum *. mu.(i));
          bn.running_var.(i) <-
            ((1. -. bn.momentum) *. bn.running_var.(i))
            +. (bn.momentum *. var.(i))
        done;
        (out, C_bn { x = batch; xhat; inv_std; mu; batch_stats = true })
      end
      else begin
        let inv_std =
          Vec.init dim (fun i -> 1. /. sqrt (bn.running_var.(i) +. bn.eps))
        in
        let xhat =
          Array.map
            (fun x ->
              Vec.init dim (fun i ->
                  (x.(i) -. bn.running_mean.(i)) *. inv_std.(i)))
            batch
        in
        let out =
          Array.map
            (fun xh ->
              Vec.init dim (fun i -> (bn.gamma.(i) *. xh.(i)) +. bn.beta.(i)))
            xhat
        in
        ( out,
          C_bn
            {
              x = batch;
              xhat;
              inv_std;
              mu = Vec.copy bn.running_mean;
              batch_stats = false;
            } )
      end
  | Leaky_relu slope ->
      (Array.map (leaky_fwd slope) batch, C_leaky (slope, batch))
  | Relu -> (Array.map (Array.map (fun v -> Float.max 0. v)) batch, C_relu batch)
  | Tanh ->
      let out = Array.map (Array.map Float.tanh) batch in
      (out, C_tanh out)

let backward layer cache dout =
  match (layer, cache) with
  | Dense d, C_dense xs ->
      let n = Array.length xs in
      if Array.length dout <> n then invalid_arg "Layer.backward: batch size";
      let dx = Array.make n [||] in
      for b = 0 to n - 1 do
        Mat.outer_acc d.dw dout.(b) xs.(b);
        Vec.axpy ~alpha:1. ~x:dout.(b) ~y:d.db;
        dx.(b) <- Mat.mat_tvec d.w dout.(b)
      done;
      dx
  | Batch_norm bn, C_bn c ->
      let n = Array.length c.x in
      let dim = Vec.dim bn.gamma in
      if Array.length dout <> n then invalid_arg "Layer.backward: batch size";
      (* Parameter gradients are identical in both statistic regimes. *)
      for b = 0 to n - 1 do
        for i = 0 to dim - 1 do
          bn.dgamma.(i) <- bn.dgamma.(i) +. (dout.(b).(i) *. c.xhat.(b).(i));
          bn.dbeta.(i) <- bn.dbeta.(i) +. dout.(b).(i)
        done
      done;
      if not c.batch_stats then
        (* Running statistics are constants: the map is affine. *)
        Array.map
          (fun dy ->
            Vec.init dim (fun i -> dy.(i) *. bn.gamma.(i) *. c.inv_std.(i)))
          dout
      else begin
        (* Full batch-norm backward through the batch mean and variance. *)
        let nf = float_of_int n in
        let sum_dxhat = Vec.create dim in
        let sum_dxhat_xhat = Vec.create dim in
        let dxhat =
          Array.map
            (fun dy -> Vec.init dim (fun i -> dy.(i) *. bn.gamma.(i)))
            dout
        in
        for b = 0 to n - 1 do
          for i = 0 to dim - 1 do
            sum_dxhat.(i) <- sum_dxhat.(i) +. dxhat.(b).(i);
            sum_dxhat_xhat.(i) <-
              sum_dxhat_xhat.(i) +. (dxhat.(b).(i) *. c.xhat.(b).(i))
          done
        done;
        Array.mapi
          (fun b _ ->
            Vec.init dim (fun i ->
                c.inv_std.(i) /. nf
                *. ((nf *. dxhat.(b).(i))
                    -. sum_dxhat.(i)
                    -. (c.xhat.(b).(i) *. sum_dxhat_xhat.(i)))))
          dout
      end
  | Leaky_relu slope, C_leaky (slope', xs) ->
      assert (slope = slope');
      Array.mapi
        (fun b dy ->
          Array.mapi (fun i g -> if xs.(b).(i) >= 0. then g else slope *. g) dy)
        dout
  | Relu, C_relu xs ->
      Array.mapi
        (fun b dy ->
          Array.mapi (fun i g -> if xs.(b).(i) > 0. then g else 0.) dy)
        dout
  | Tanh, C_tanh ys ->
      Array.mapi
        (fun b dy ->
          Array.mapi (fun i g -> g *. (1. -. (ys.(b).(i) *. ys.(b).(i)))) dy)
        dout
  | (Dense _ | Batch_norm _ | Leaky_relu _ | Relu | Tanh), _ ->
      invalid_arg "Layer.backward: cache does not match layer"

let zero_grad = function
  | Dense d ->
      Mat.fill d.dw 0.;
      Vec.fill d.db 0.
  | Batch_norm bn ->
      Vec.fill bn.dgamma 0.;
      Vec.fill bn.dbeta 0.
  | Leaky_relu _ | Relu | Tanh -> ()

let params = function
  | Dense d -> [ (Mat.raw d.w, Mat.raw d.dw); (d.b, d.db) ]
  | Batch_norm bn -> [ (bn.gamma, bn.dgamma); (bn.beta, bn.dbeta) ]
  | Leaky_relu _ | Relu | Tanh -> []

let copy = function
  | Dense d ->
      Dense
        { w = Mat.copy d.w; b = Vec.copy d.b; dw = Mat.copy d.dw;
          db = Vec.copy d.db }
  | Batch_norm bn ->
      Batch_norm
        {
          bn with
          gamma = Vec.copy bn.gamma;
          beta = Vec.copy bn.beta;
          dgamma = Vec.copy bn.dgamma;
          dbeta = Vec.copy bn.dbeta;
          running_mean = Vec.copy bn.running_mean;
          running_var = Vec.copy bn.running_var;
        }
  | (Leaky_relu _ | Relu | Tanh) as l -> l
