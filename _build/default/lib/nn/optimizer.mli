(** Gradient-based parameter optimizers.

    Operate on the [(value, gradient)] flat-array views exposed by
    {!Mlp.params}, so a single optimizer instance can drive any network.
    Adam is the default for TD3 as in the Orca/C3 training setup. *)

type t

val sgd : ?momentum:float -> lr:float -> unit -> t
val adam : ?beta1:float -> ?beta2:float -> ?eps:float -> lr:float -> unit -> t

val step : t -> (float array * float array) list -> unit
(** Apply one update using the current gradient values. The optimizer keeps
    per-parameter state keyed by position in the list, so the same
    parameter list (same order and shapes) must be passed on every call. *)

val set_lr : t -> float -> unit
val lr : t -> float

val clip_gradients : norm:float -> (float array * float array) list -> unit
(** Global-norm gradient clipping applied in place. *)
