lib/netsim/multiflow.mli: Canopy_trace Env
