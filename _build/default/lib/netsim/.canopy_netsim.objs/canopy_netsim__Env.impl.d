lib/netsim/env.ml: Array Canopy_trace Canopy_util Float List Queue
