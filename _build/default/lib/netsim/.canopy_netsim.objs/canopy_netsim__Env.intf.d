lib/netsim/env.mli: Canopy_trace Canopy_util
