lib/netsim/multiflow.ml: Array Canopy_trace Env Float List Queue
