(** Growable float buffer.

    Collects per-packet samples (RTTs, queueing delays) during a
    simulation run without preallocating for the worst case. *)

type t

val create : ?initial_capacity:int -> unit -> t
val length : t -> int
val push : t -> float -> unit
val get : t -> int -> float
(** Raises [Invalid_argument] when out of range. *)

val to_array : t -> float array
(** Fresh array of the live contents. *)

val clear : t -> unit
val iter : (float -> unit) -> t -> unit
val fold : ('a -> float -> 'a) -> 'a -> t -> 'a
val sum : t -> float
val mean : t -> float
(** [0.] when empty. *)
