(** Fixed-capacity ring buffer.

    Used for bounded observation histories (the controller sees the past [k]
    monitoring intervals) and for sliding-window statistics in the link
    simulator. Pushing onto a full ring evicts the oldest element. *)

type 'a t

val create : capacity:int -> 'a t
(** Fresh empty ring. Requires [capacity > 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_full : 'a t -> bool
val is_empty : 'a t -> bool
val clear : 'a t -> unit

val push : 'a t -> 'a -> unit
(** Append, evicting the oldest element when full. *)

val get : 'a t -> int -> 'a
(** [get t i] is the [i]-th oldest live element ([0] = oldest). Raises
    [Invalid_argument] when out of range. *)

val newest : 'a t -> 'a
(** Most recently pushed element. Raises [Invalid_argument] when empty. *)

val oldest : 'a t -> 'a
(** Oldest live element. Raises [Invalid_argument] when empty. *)

val to_list : 'a t -> 'a list
(** Oldest-first. *)

val to_array : 'a t -> 'a array
(** Oldest-first. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Oldest-first fold. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest-first iteration. *)
