type t = { mutable data : float array; mutable len : int }

let create ?(initial_capacity = 64) () =
  if initial_capacity <= 0 then invalid_arg "Fbuf.create: capacity";
  { data = Array.make initial_capacity 0.; len = 0 }

let length t = t.len

let push t x =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * Array.length t.data) 0. in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Fbuf.get: index";
  t.data.(i)

let to_array t = Array.sub t.data 0 t.len
let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let sum t = fold ( +. ) 0. t
let mean t = if t.len = 0 then 0. else sum t /. float_of_int t.len
