(** Small numeric helpers shared across the repository. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] limits [x] to [\[lo, hi\]]. Requires [lo <= hi]. *)

val clamp_int : lo:int -> hi:int -> int -> int

val lerp : float -> float -> float -> float
(** [lerp a b t] is [a + t*(b-a)]. *)

val approx_equal : ?eps:float -> float -> float -> bool
(** Absolute-and-relative tolerance comparison (default [eps = 1e-9]). *)

val is_finite : float -> bool

val log2 : float -> float

val pow2 : float -> float
(** [pow2 x] is [2^x]. *)

val sign : float -> float
(** [-1.], [0.] or [1.]. *)

val round_to : int -> float -> float
(** [round_to d x] rounds [x] to [d] decimal places. *)

val sum : float array -> float
val fsum_list : float list -> float
