let clamp ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x

let clamp_int ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x

let lerp a b t = a +. (t *. (b -. a))

let approx_equal ?(eps = 1e-9) a b =
  let diff = Float.abs (a -. b) in
  diff <= eps || diff <= eps *. Float.max (Float.abs a) (Float.abs b)

let is_finite x = Float.is_finite x
let log2 x = log x /. log 2.
let pow2 x = Float.exp (x *. log 2.)
let sign x = if x > 0. then 1. else if x < 0. then -1. else 0.

let round_to d x =
  let scale = 10. ** float_of_int d in
  Float.round (x *. scale) /. scale

let sum = Array.fold_left ( +. ) 0.
let fsum_list = List.fold_left ( +. ) 0.
