type 'a t = {
  buf : 'a option array;
  mutable start : int; (* index of the oldest element *)
  mutable len : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity";
  { buf = Array.make capacity None; start = 0; len = 0 }

let capacity t = Array.length t.buf
let length t = t.len
let is_full t = t.len = capacity t
let is_empty t = t.len = 0

let clear t =
  Array.fill t.buf 0 (capacity t) None;
  t.start <- 0;
  t.len <- 0

let push t x =
  let cap = capacity t in
  if t.len = cap then begin
    t.buf.(t.start) <- Some x;
    t.start <- (t.start + 1) mod cap
  end
  else begin
    t.buf.((t.start + t.len) mod cap) <- Some x;
    t.len <- t.len + 1
  end

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ring.get: index";
  match t.buf.((t.start + i) mod capacity t) with
  | Some x -> x
  | None -> assert false

let newest t =
  if t.len = 0 then invalid_arg "Ring.newest: empty";
  get t (t.len - 1)

let oldest t =
  if t.len = 0 then invalid_arg "Ring.oldest: empty";
  get t 0

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc (get t i)
  done;
  !acc

let iter f t = fold (fun () x -> f x) () t
let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let to_array t =
  if t.len = 0 then [||]
  else begin
    let first = get t 0 in
    let out = Array.make t.len first in
    for i = 1 to t.len - 1 do
      out.(i) <- get t i
    done;
    out
  end
