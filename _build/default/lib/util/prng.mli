(** Deterministic, splittable pseudo-random number generation.

    All stochastic components in the repository (exploration noise, trace
    generators, weight initialization, workload sampling) draw from values of
    type {!t} so that every experiment is reproducible from a single seed and
    independent components never share a stream. The generator is
    splitmix64, which is small, fast and statistically adequate for
    simulation workloads. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. Two
    generators created from the same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Streams of the parent and child do not overlap in practice. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy replays [t]'s future. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val gaussian_scaled : t -> mu:float -> sigma:float -> float
(** Normal deviate with the given mean and standard deviation. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate. Requires [rate > 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element. Requires a non-empty array. *)
