lib/util/mathx.ml: Array Float List
