lib/util/fbuf.ml: Array
