lib/util/ring.ml: Array List
