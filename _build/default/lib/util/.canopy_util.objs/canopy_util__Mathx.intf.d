lib/util/mathx.mli:
