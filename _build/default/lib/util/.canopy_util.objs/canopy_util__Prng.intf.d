lib/util/prng.mli:
