lib/util/ring.mli:
