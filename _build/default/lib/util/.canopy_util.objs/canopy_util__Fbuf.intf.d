lib/util/fbuf.mli:
