lib/util/prng.ml: Array Float Int64
