open Canopy_tensor
open Canopy_nn

let propagate_layer layer box =
  match layer with
  | Layer.Dense d -> Box.affine d.w d.b box
  | Layer.Batch_norm bn ->
      (* Inference-mode batch norm is x ↦ γ·(x−μ)/σ + β, an elementwise
         affine map with constant coefficients. *)
      let n = Vec.dim bn.gamma in
      let scale =
        Vec.init n (fun i -> bn.gamma.(i) /. sqrt (bn.running_var.(i) +. bn.eps))
      in
      let shift =
        Vec.init n (fun i -> bn.beta.(i) -. (scale.(i) *. bn.running_mean.(i)))
      in
      Box.diag_affine ~scale ~shift box
  | Layer.Leaky_relu slope ->
      Box.map_monotone (fun x -> if x >= 0. then x else slope *. x) box
  | Layer.Relu -> Box.map_monotone (fun x -> Float.max 0. x) box
  | Layer.Tanh -> Box.map_monotone Float.tanh box

let propagate net box =
  if Box.dim box <> Mlp.in_dim net then invalid_arg "Ibp.propagate: input dim";
  List.fold_left (fun acc layer -> propagate_layer layer acc) box
    (Mlp.layers net)

let output_interval net box =
  if Mlp.out_dim net <> 1 then invalid_arg "Ibp.output_interval: out_dim";
  Box.dimension (propagate net box) 0
