(** Interval Bound Propagation through a neural controller (Section 5).

    Propagates a {!Box.t} through every layer of an {!Canopy_nn.Mlp.t}
    using the inference-mode semantics — batch normalization is the affine
    map induced by its running statistics, exactly the function the
    deployed controller computes — and returns a sound over-approximation
    of the reachable outputs. *)

open Canopy_nn

val propagate : Mlp.t -> Box.t -> Box.t
(** Sound abstract image of the input box under the network. Raises
    [Invalid_argument] when the box dimension differs from the network's
    input dimension. *)

val output_interval : Mlp.t -> Box.t -> Interval.t
(** {!propagate} specialized to scalar-output networks (the CWND-scaling
    action head). Raises [Invalid_argument] for networks with more than
    one output. *)

val propagate_layer : Layer.t -> Box.t -> Box.t
(** Single-layer abstract transformer; exposed for tests and for building
    custom pipelines. *)
