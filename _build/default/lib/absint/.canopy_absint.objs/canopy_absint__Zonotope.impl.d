lib/absint/zonotope.ml: Array Box Canopy_nn Canopy_tensor Float Ibp Interval List Mat Vec
