lib/absint/zonotope.mli: Box Canopy_nn Canopy_tensor Interval Mat Vec
