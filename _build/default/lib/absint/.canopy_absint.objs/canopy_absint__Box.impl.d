lib/absint/box.ml: Array Canopy_tensor Canopy_util Float Format Interval Mat Vec
