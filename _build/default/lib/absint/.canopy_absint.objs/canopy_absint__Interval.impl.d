lib/absint/interval.ml: Canopy_util Float Format List
