lib/absint/interval.mli: Canopy_util Format
