lib/absint/ibp.ml: Array Box Canopy_nn Canopy_tensor Float Layer List Mlp Vec
