lib/absint/ibp.mli: Box Canopy_nn Interval Layer Mlp
