lib/absint/box.mli: Canopy_tensor Canopy_util Format Interval Mat Vec
