(** The box (hyper-interval) abstract domain of Section 3.2.

    An abstract state is a pair [(b_c, b_e)] of a center vector and a
    non-negative deviation vector; dimension [i] concretizes to the
    interval [\[b_c_i − b_e_i, b_c_i + b_e_i\]]. *)

open Canopy_tensor

type t

val make : center:Vec.t -> dev:Vec.t -> t
(** Raises [Invalid_argument] when lengths differ or a deviation is
    negative. The vectors are copied. *)

val of_point : Vec.t -> t
(** Degenerate box (all deviations zero). *)

val of_intervals : Interval.t array -> t
val to_intervals : t -> Interval.t array
val dim : t -> int
val center : t -> Vec.t
(** Fresh copy. *)

val dev : t -> Vec.t
(** Fresh copy. *)

val dimension : t -> int -> Interval.t
(** Interval concretization of one dimension. *)

val with_dimension : t -> int -> Interval.t -> t
(** Functional update of one dimension's interval. *)

val contains : t -> Vec.t -> bool
val subset : t -> t -> bool
val volume : t -> float
(** Product of widths; 0 for a degenerate box. *)

val affine : Mat.t -> Vec.t -> t -> t
(** [affine m b box] is the abstract image under [x ↦ m·x + b]:
    center [m·b_c + b], deviation [|m|·b_e] (the linear-map transformer of
    Section 3.2). *)

val diag_affine : scale:Vec.t -> shift:Vec.t -> t -> t
(** Image under the element-wise map [x_i ↦ scale_i·x_i + shift_i]
    (batch-norm in inference mode). *)

val map_monotone : (float -> float) -> t -> t
(** Element-wise image under a non-decreasing scalar function (ReLU,
    LeakyReLU, tanh) using the endpoint formula of Appendix A. *)

val sample : Canopy_util.Prng.t -> t -> Vec.t
(** Uniform sample from the concretization. *)

val hull : t -> t -> t
val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
