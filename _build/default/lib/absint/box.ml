open Canopy_tensor

type t = { c : Vec.t; e : Vec.t }

let make ~center ~dev =
  if Vec.dim center <> Vec.dim dev then invalid_arg "Box.make: dims";
  Array.iter
    (fun d ->
      if d < 0. || Float.is_nan d then invalid_arg "Box.make: deviation")
    dev;
  { c = Vec.copy center; e = Vec.copy dev }

let of_point v = { c = Vec.copy v; e = Vec.create (Vec.dim v) }

let of_intervals ivs =
  {
    c = Array.map Interval.midpoint ivs;
    e = Array.map Interval.radius ivs;
  }

let to_intervals t =
  Array.mapi (fun i c -> Interval.make (c -. t.e.(i)) (c +. t.e.(i))) t.c

let dim t = Vec.dim t.c
let center t = Vec.copy t.c
let dev t = Vec.copy t.e

let dimension t i =
  Interval.make (t.c.(i) -. t.e.(i)) (t.c.(i) +. t.e.(i))

let with_dimension t i iv =
  let c = Vec.copy t.c and e = Vec.copy t.e in
  c.(i) <- Interval.midpoint iv;
  e.(i) <- Interval.radius iv;
  { c; e }

let contains t v =
  Vec.dim v = dim t
  && begin
       let ok = ref true in
       for i = 0 to dim t - 1 do
         if Float.abs (v.(i) -. t.c.(i)) > t.e.(i) +. 1e-12 then ok := false
       done;
       !ok
     end

let subset a b =
  dim a = dim b
  && begin
       let ok = ref true in
       for i = 0 to dim a - 1 do
         let alo = a.c.(i) -. a.e.(i) and ahi = a.c.(i) +. a.e.(i) in
         let blo = b.c.(i) -. b.e.(i) and bhi = b.c.(i) +. b.e.(i) in
         if alo < blo -. 1e-12 || ahi > bhi +. 1e-12 then ok := false
       done;
       !ok
     end

let volume t = Array.fold_left (fun acc e -> acc *. (2. *. e)) 1. t.e

let affine m b box =
  if Mat.cols m <> dim box then invalid_arg "Box.affine: dims";
  let c = Mat.mat_vec m box.c in
  Vec.axpy ~alpha:1. ~x:b ~y:c;
  let e = Mat.mat_vec (Mat.abs m) box.e in
  { c; e }

let diag_affine ~scale ~shift box =
  if Vec.dim scale <> dim box || Vec.dim shift <> dim box then
    invalid_arg "Box.diag_affine: dims";
  {
    c = Vec.init (dim box) (fun i -> (scale.(i) *. box.c.(i)) +. shift.(i));
    e = Vec.init (dim box) (fun i -> Float.abs scale.(i) *. box.e.(i));
  }

(* Appendix A endpoint formula: for a non-decreasing f, the image of
   [c-e, c+e] is [f(c-e), f(c+e)], re-centered. *)
let map_monotone f box =
  let n = dim box in
  let c = Vec.create n and e = Vec.create n in
  for i = 0 to n - 1 do
    let lo = f (box.c.(i) -. box.e.(i)) and hi = f (box.c.(i) +. box.e.(i)) in
    c.(i) <- 0.5 *. (hi +. lo);
    e.(i) <- 0.5 *. (hi -. lo)
  done;
  { c; e }

let sample rng t =
  Vec.init (dim t) (fun i ->
      Canopy_util.Prng.uniform rng (t.c.(i) -. t.e.(i)) (t.c.(i) +. t.e.(i)))

let hull a b =
  if dim a <> dim b then invalid_arg "Box.hull: dims";
  of_intervals
    (Array.init (dim a) (fun i ->
         Interval.hull (dimension a i) (dimension b i)))

let equal ?(eps = 1e-12) a b =
  dim a = dim b
  && Vec.approx_equal ~eps a.c b.c
  && Vec.approx_equal ~eps a.e b.e

let pp ppf t =
  Format.fprintf ppf "@[<h>box{";
  for i = 0 to dim t - 1 do
    if i > 0 then Format.fprintf ppf ", ";
    Interval.pp ppf (dimension t i)
  done;
  Format.fprintf ppf "}@]"
