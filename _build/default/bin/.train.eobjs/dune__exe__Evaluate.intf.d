bin/evaluate.mli:
