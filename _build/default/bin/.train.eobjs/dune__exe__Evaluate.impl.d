bin/evaluate.ml: Arg Canopy Canopy_trace Cmd Cmdliner Format List Option Printf Term
