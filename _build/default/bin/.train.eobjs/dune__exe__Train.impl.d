bin/train.ml: Arg Canopy Cmd Cmdliner Format Logs Logs_fmt Printf Term
