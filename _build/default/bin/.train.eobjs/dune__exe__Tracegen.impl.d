bin/tracegen.ml: Arg Canopy_trace Cmd Cmdliner Format Printf Term
