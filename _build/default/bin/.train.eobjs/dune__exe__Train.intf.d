bin/train.mli:
