bin/tracegen.mli:
