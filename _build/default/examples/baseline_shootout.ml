(* Baseline shootout: Cubic vs Reno vs Vegas vs BBR vs PCC-Vivace across the three
   synthetic trace families of Appendix B and an LTE-like trace, at
   shallow (1 BDP) and deep (5 BDP) buffers.

   Reproduces the qualitative landscape the paper's evaluation is set
   in: Cubic fills deep buffers (bufferbloat), Vegas keeps delay low at
   some throughput cost, BBR sits in between.

   Run with: dune exec examples/baseline_shootout.exe *)

let schemes =
  [
    ("cubic", Canopy.Eval.cubic_scheme);
    ("reno", fun () -> Canopy_cc.Reno.to_controller (Canopy_cc.Reno.create ()));
    ("vegas", Canopy.Eval.vegas_scheme);
    ("bbr", Canopy.Eval.bbr_scheme);
    ("vivace", Canopy.Eval.vivace_scheme);
  ]

let traces =
  [
    Canopy_trace.Synthetic.step_fluctuation ~duration_ms:15_000
      ~period_ms:2_000 ~low_mbps:12. ~high_mbps:48. ();
    Canopy_trace.Synthetic.ramp_drop ~duration_ms:15_000 ~cycle_ms:5_000
      ~floor_mbps:12. ~peak_mbps:96. ();
    Canopy_trace.Synthetic.triangle ~duration_ms:15_000 ~cycle_ms:5_000
      ~floor_mbps:12. ~peak_mbps:96. ();
    Canopy_trace.Lte.generate ~name:"lte-sample" ~seed:101
      ~duration_ms:15_000 ();
  ]

let () =
  List.iter
    (fun bdp ->
      Format.printf "@.== buffer = %g BDP ==@." bdp;
      List.iter
        (fun trace ->
          Format.printf "-- %a@." Canopy_trace.Trace.pp trace;
          List.iter
            (fun (name, make) ->
              let link = Canopy.Eval.link ~min_rtt_ms:40 ~bdp trace in
              let r = Canopy.Eval.eval_tcp ~name make link in
              Format.printf "  %a@." Canopy.Eval.pp_result r)
            schemes)
        traces)
    [ 1.; 5. ]
