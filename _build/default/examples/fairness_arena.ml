(* Fairness arena: competing flows on one bottleneck.

   A deployment concern adjacent to the paper's single-flow evaluation:
   does a controller share the link? This example pits controller pairs
   against each other on a shared 48 Mbps / 40 ms bottleneck and reports
   each flow's throughput plus Jain's fairness index, including a trained
   Canopy policy competing against TCP Cubic.

   Run with: dune exec examples/fairness_arena.exe *)

module MF = Canopy_netsim.Multiflow
module Controller = Canopy_cc.Controller

let duration_ms = 20_000

let arena name (mk_a : unit -> Controller.t) (mk_b : unit -> Controller.t) =
  let trace =
    Canopy_trace.Trace.constant ~name:"shared48" ~duration_ms ~mbps:48.
  in
  let mf =
    MF.create
      {
        MF.trace;
        min_rtt_ms = [| 40; 40 |];
        buffer_pkts = 320;
        mtu_bytes = 1500;
        initial_cwnd = 10.;
      }
  in
  let a = mk_a () and b = mk_b () in
  let handlers = [| Controller.handlers a; Controller.handlers b |] in
  for _ = 1 to duration_ms do
    MF.tick mf handlers;
    MF.set_cwnd mf ~flow:0 (a.Controller.cwnd ());
    MF.set_cwnd mf ~flow:1 (b.Controller.cwnd ())
  done;
  Format.printf "%-22s %-8s %6.1f Mbps  vs  %-8s %6.1f Mbps   jain=%.3f\n"
    name a.Controller.name
    (MF.throughput_mbps mf ~flow:0)
    b.Controller.name
    (MF.throughput_mbps mf ~flow:1)
    (MF.jain_index mf)

(* Adapt a trained (or here: untrained) Canopy policy into the controller
   interface: Cubic backbone + periodic Eq.-1 modulation, driven by the
   multi-flow clock. *)
let canopy_controller () =
  let rng = Canopy_util.Prng.create 99 in
  let history = 5 in
  let actor =
    Canopy_nn.Mlp.actor ~rng
      ~in_dim:(history * Canopy_orca.Observation.feature_count)
      ~hidden:32 ~out_dim:1
  in
  let cubic = Canopy_cc.Cubic.create () in
  let monitor = Canopy_orca.Monitor.create ~min_rtt_ms:40 () in
  let frames = Canopy_util.Ring.create ~capacity:history in
  for _ = 1 to history do
    Canopy_util.Ring.push frames Canopy_orca.Observation.zero_features
  done;
  let thr_scale = ref 0.1 in
  let last_decision = ref 0 in
  let cubic_handlers =
    Controller.handlers (Canopy_cc.Cubic.to_controller cubic)
  in
  let monitor_handlers = Canopy_orca.Monitor.handlers monitor in
  let decide now_ms =
    if now_ms - !last_decision >= 40 then begin
      last_decision := now_ms;
      let obs =
        Canopy_orca.Monitor.take monitor ~now_ms
          ~cwnd_pkts:(Canopy_cc.Cubic.cwnd cubic)
      in
      thr_scale := Float.max !thr_scale obs.Canopy_orca.Observation.thr_mbps;
      Canopy_util.Ring.push frames
        (Canopy_orca.Observation.to_features ~thr_scale_mbps:!thr_scale obs);
      let state =
        Canopy_util.Ring.to_array frames |> Array.to_list |> Array.concat
      in
      let a =
        Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1.
          (Canopy_nn.Mlp.forward actor state).(0)
      in
      let enforced =
        Canopy_orca.Agent_env.cwnd_of_action ~action:a
          ~cwnd_tcp:(Canopy_cc.Cubic.cwnd cubic)
      in
      Canopy_cc.Cubic.force_cwnd cubic enforced
    end
  in
  {
    Controller.name = "canopy";
    on_ack =
      (fun ack ->
        cubic_handlers.Canopy_netsim.Env.on_ack ack;
        monitor_handlers.Canopy_netsim.Env.on_ack ack;
        decide ack.Canopy_netsim.Env.now_ms);
    on_loss =
      (fun ~now_ms ->
        cubic_handlers.Canopy_netsim.Env.on_loss ~now_ms;
        monitor_handlers.Canopy_netsim.Env.on_loss ~now_ms;
        decide now_ms);
    cwnd = (fun () -> Canopy_cc.Cubic.cwnd cubic);
  }

let cubic () = Canopy_cc.Cubic.to_controller (Canopy_cc.Cubic.create ())
let reno () = Canopy_cc.Reno.to_controller (Canopy_cc.Reno.create ())
let vegas () = Canopy_cc.Vegas.to_controller (Canopy_cc.Vegas.create ())
let bbr () = Canopy_cc.Bbr.to_controller (Canopy_cc.Bbr.create ())
let vivace () = Canopy_cc.Vivace.to_controller (Canopy_cc.Vivace.create ())

let () =
  Format.printf "flows sharing a 48 Mbps / 40 ms bottleneck (2 BDP buffer):@.@.";
  arena "intra-protocol" cubic cubic;
  arena "intra-protocol" reno reno;
  arena "loss vs delay" cubic vegas;
  arena "loss vs model" cubic bbr;
  arena "loss vs learned" cubic vivace;
  arena "learned modulation" canopy_controller cubic;
  Format.printf
    "@.Jain index 1.0 = perfectly fair; the Cubic-vs-Vegas row shows the@.";
  Format.printf
    "classic starvation of delay-based control by loss-based control.@."
