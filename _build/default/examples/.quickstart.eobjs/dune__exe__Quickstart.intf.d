examples/quickstart.mli:
