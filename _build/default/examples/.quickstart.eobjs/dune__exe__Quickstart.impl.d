examples/quickstart.ml: Canopy Canopy_orca Canopy_rl Canopy_trace Format List
