examples/baseline_shootout.ml: Canopy Canopy_cc Canopy_trace Format List
