examples/property_playground.ml: Array Canopy Canopy_nn Canopy_orca Canopy_tensor Format Layer List Mat Mlp
