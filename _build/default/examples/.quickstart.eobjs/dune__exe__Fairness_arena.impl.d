examples/fairness_arena.ml: Array Canopy_cc Canopy_netsim Canopy_nn Canopy_orca Canopy_trace Canopy_util Float Format
