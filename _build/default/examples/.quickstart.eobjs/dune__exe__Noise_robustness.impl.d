examples/noise_robustness.ml: Canopy Canopy_rl Canopy_trace Format List
