examples/noise_robustness.mli:
