examples/certified_deployment.ml: Canopy Canopy_nn Canopy_orca Canopy_trace Canopy_util Format List
