examples/fairness_arena.mli:
