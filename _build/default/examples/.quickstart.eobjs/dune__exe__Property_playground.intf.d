examples/property_playground.mli:
