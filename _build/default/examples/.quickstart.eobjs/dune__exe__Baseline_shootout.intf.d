examples/baseline_shootout.mli:
