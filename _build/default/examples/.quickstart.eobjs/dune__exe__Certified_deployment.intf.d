examples/certified_deployment.mli:
