(* Property playground: certify hand-built controllers against custom
   properties, without any training — a tour of the verifier
   (Sections 3.2, 4.3 and 4.4).

   Three controllers are pushed through the abstract interpreter:
   - a "polite" controller that shrinks the window under high delay and
     grows it under low delay (provably satisfies the performance
     property);
   - a "greedy" controller that always grows the window (provably
     violates the large-delay case);
   - a high-gain controller that is provably not robust to ±5%
     measurement noise, versus a saturated one that is.

   Run with: dune exec examples/property_playground.exe *)

open Canopy_nn
open Canopy_tensor
module Observation = Canopy_orca.Observation

let history = 5
let state_dim = history * Observation.feature_count
let delay_indices = Canopy.Certify.delay_indices ~history

(* a = tanh(w · x + b), built from the library's real layer types. *)
let linear_actor ~bias weight_of =
  Mlp.create ~in_dim:state_dim
    [
      Layer.Dense
        {
          w = Mat.init ~rows:1 ~cols:state_dim (fun _ j -> weight_of j);
          b = [| bias |];
          dw = Mat.create ~rows:1 ~cols:state_dim;
          db = [| 0. |];
        };
      Layer.Tanh;
    ]

let polite =
  (* strongly negative action when delays are high, positive when low *)
  linear_actor ~bias:50. (fun j -> if List.mem j delay_indices then -20. else 0.)

let greedy = linear_actor ~bias:5. (fun _ -> 0.)

let jittery =
  (* operating point at the steep part of tanh: tiny input noise flips
     the decision *)
  linear_actor ~bias:(-100.) (fun j -> if List.mem j delay_indices then 50. else 0.)

let state = Array.make state_dim 0.4

let report name property actor =
  let cert =
    Canopy.Certify.certify ~actor ~property ~n_components:5 ~history ~state
      ~cwnd_tcp:100. ~prev_cwnd:100. ()
  in
  Format.printf "@.[%s] against %a@." name Canopy.Property.pp property;
  Format.printf "%a@." Canopy.Certify.pp cert

let () =
  let performance = Canopy.Property.performance () in
  report "polite" performance polite;
  report "greedy" performance greedy;

  (* A custom, stricter performance property: react already at
     moderate delays (p = 0.6) and only grow below q = 0.15. *)
  let strict = Canopy.Property.performance ~p:0.6 ~q:0.15 () in
  report "polite vs strict thresholds" strict polite;

  let robustness = Canopy.Property.robustness () in
  report "jittery" robustness jittery;
  report "polite (saturated => robust)" robustness polite;

  (* A looser robustness property tolerating 50% window fluctuation. *)
  let loose = Canopy.Property.robustness ~mu:0.05 ~epsilon:0.5 () in
  report "jittery vs loose epsilon" loose jittery
